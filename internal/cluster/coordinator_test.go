package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// The core correctness property: a scatter-gather over any shard layout
// returns exactly the single-process (monolith) top-k.
func TestScatterGatherMatchesMonolith(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			shardIxs, mono := buildWorld(t, n)
			c, err := New(localShards(shardIxs), fastConfig())
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 3, 7} {
				sql := rankedSQLK(k)
				res, err := c.TopK(context.Background(), sql)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				assertSameSeqs(t, res.Sequences, monolithTopK(t, mono, sql))
				if len(res.Partition.OK) != n || len(res.Partition.Degraded)+len(res.Partition.Failed) != 0 {
					t.Fatalf("k=%d: partition %+v, want all %d shards ok", k, res.Partition, n)
				}
				if res.Rounds < 1 {
					t.Fatalf("k=%d: rounds = %d", k, res.Rounds)
				}
				for sh, gen := range res.Generations {
					if gen != 1 {
						t.Errorf("shard %s generation = %d, want 1", sh, gen)
					}
				}
			}
		})
	}
}

// A shard that answered to completion satisfies the separation property,
// so its residual upper bound sits below the global Blo_K and the
// refinement loop must prune it instead of re-querying.
func TestHealthyShardsPrunedWithoutRefinement(t *testing.T) {
	shardIxs, _ := buildWorld(t, 2)
	c, err := New(localShards(shardIxs), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (healthy shards must not be re-queried)", res.Rounds)
	}
	if res.BloK == 0 {
		t.Fatal("BloK not computed")
	}
	if res.PrunedShards == 0 {
		t.Fatal("expected at least one truncated shard to be pruned by Blo_K")
	}
}

// A shard whose residual upper bound clears the global Blo_K is re-queried
// with a doubled k (capped at its candidate count) until it either
// separates or exhausts its candidates.
func TestRefineRequeriesTruncatedShards(t *testing.T) {
	mkSeq := func(v string, clip int, score float64) RankedSeq {
		return RankedSeq{Video: v, StartClip: clip, EndClip: clip, Score: score, Lower: score, Upper: score, Exact: true}
	}
	var mu sync.Mutex
	var ks []int
	deep := &stubBackend{name: "deep-r0", fn: func(_ context.Context, req Request) (*Response, error) {
		mu.Lock()
		ks = append(ks, req.K)
		mu.Unlock()
		all := []RankedSeq{
			mkSeq("va", 1, 10), mkSeq("va", 5, 9), mkSeq("va", 9, 8),
			mkSeq("va", 13, 7.4), mkSeq("va", 17, 7.3), mkSeq("va", 21, 7.2),
		}
		resp := &Response{Shard: "deep", Replica: "deep-r0", Generation: 1, Candidates: len(all)}
		if req.K >= len(all) {
			resp.Sequences = all
			return resp, nil
		}
		resp.Sequences = all[:req.K]
		resp.Truncated = true
		resp.ResidualUpper = 7.5 // loose bound above the omitted tail
		return resp, nil
	}}
	shallow := &stubBackend{name: "shallow-r0", fn: func(_ context.Context, req Request) (*Response, error) {
		return &Response{Shard: "shallow", Replica: "shallow-r0", Generation: 1, Candidates: 2,
			Sequences: []RankedSeq{mkSeq("vb", 1, 2), mkSeq("vb", 5, 1)}}, nil
	}}
	c, err := New([]ShardSpec{
		{Name: "deep", Replicas: []Backend{deep}},
		{Name: "shallow", Replicas: []Backend{shallow}},
	}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.TopK(context.Background(), rankedSQLK(4))
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: deep returns its top-4 (Blo_K = 7.4 < 7.5 residual? no:
	// top-4 lowers are 10,9,8,7.4 → Blo_K 7.4 < 7.5 → refine deep with
	// k=8 capped at 6 candidates). Round 2: deep separates.
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2; shard ks seen: %v", res.Rounds, ks)
	}
	mu.Lock()
	gotKs := append([]int(nil), ks...)
	mu.Unlock()
	if len(gotKs) != 2 || gotKs[0] != 4 || gotKs[1] != 6 {
		t.Fatalf("deep shard saw ks %v, want [4 6]", gotKs)
	}
	want := []string{"va[1-1]", "va[5-5]", "va[9-9]", "va[13-13]"}
	if got := keys(res.Sequences); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("merged top-4 = %v, want %v", got, want)
	}
}

// A dead primary fails over to the secondary replica: the answer is still
// correct and the shard reports degraded, not failed.
func TestFailoverToSecondReplica(t *testing.T) {
	shardIxs, mono := buildWorld(t, 2)
	dead := &stubBackend{name: "s0-r0", fn: func(context.Context, Request) (*Response, error) {
		return nil, &replicaError{Replica: "s0-r0", Err: errors.New("connection refused")}
	}}
	specs := []ShardSpec{
		{Name: "s0", Replicas: []Backend{dead, NewLocalBackend("s0-r1", 1, shardIxs[0])}},
		{Name: "s1", Replicas: []Backend{NewLocalBackend("s1-r0", 1, shardIxs[1])}},
	}
	c, err := New(specs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatalf("failover should succeed, got %v", err)
	}
	assertSameSeqs(t, res.Sequences, monolithTopK(t, mono, rankedSQL))
	if len(res.Partition.Degraded) != 1 || res.Partition.Degraded[0] != "s0" {
		t.Fatalf("partition = %+v, want s0 degraded", res.Partition)
	}
	var s0 *ShardOutcome
	for i := range res.Shards {
		if res.Shards[i].Shard == "s0" {
			s0 = &res.Shards[i]
		}
	}
	if s0 == nil || s0.Outcome != "degraded" || s0.Replica != "s0-r1" || s0.Attempts < 2 {
		t.Fatalf("s0 outcome = %+v, want degraded via s0-r1 after >=2 attempts", s0)
	}
	if got := c.byName["s0"].failovers.Value(); got == 0 {
		t.Fatal("failover counter not incremented")
	}
}

// Exhausting a whole shard's replica set degrades gracefully: the merged
// answer covers the surviving shards and a typed *DegradedError names the
// lost shard.
func TestShardLossDegradesGracefully(t *testing.T) {
	shardIxs, mono := buildWorld(t, 2)
	deadReplica := func(name string) Backend {
		return &stubBackend{name: name, fn: func(context.Context, Request) (*Response, error) {
			return nil, &replicaError{Replica: name, Err: errors.New("connection refused")}
		}}
	}
	specs := []ShardSpec{
		{Name: "s0", Replicas: []Backend{NewLocalBackend("s0-r0", 1, shardIxs[0])}},
		{Name: "s1", Replicas: []Backend{deadReplica("s1-r0"), deadReplica("s1-r1")}},
	}
	c, err := New(specs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.TopK(context.Background(), rankedSQL)
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("err = %v, want *DegradedError", err)
	}
	if len(deg.Failed) != 1 || deg.Failed[0] != "s1" {
		t.Fatalf("DegradedError.Failed = %v, want [s1]", deg.Failed)
	}
	if res == nil {
		t.Fatal("degraded answer must still carry the surviving shards' result")
	}
	if len(res.Partition.Failed) != 1 || res.Partition.Failed[0] != "s1" {
		t.Fatalf("partition = %+v, want s1 failed", res.Partition)
	}
	// The surviving shard's answer must equal the monolith restricted to
	// that shard's members — degraded, but never wrong.
	groups := PartitionMembers(testMembers, 2)
	want := monolithTopK(t, shardIxs[0], rankedSQL)
	assertSameSeqs(t, res.Sequences, want)
	for _, s := range res.Sequences {
		if ShardOf(s.Video, 2) != 0 {
			t.Fatalf("sequence %s not from surviving shard (groups %v)", seqKey(s), groups)
		}
	}
	_ = mono
}

// A hanging primary is hedged after HedgeAfter: the raced secondary
// answers, the hedge win is counted, and the shard reports degraded.
func TestHedgeRacesSlowReplica(t *testing.T) {
	shardIxs, mono := buildWorld(t, 1)
	hang := &stubBackend{name: "s0-r0", fn: func(ctx context.Context, _ Request) (*Response, error) {
		<-ctx.Done()
		return nil, &replicaError{Replica: "s0-r0", Err: ctx.Err()}
	}}
	cfg := fastConfig()
	cfg.HedgeAfter = 5 * time.Millisecond
	c, err := New([]ShardSpec{
		{Name: "s0", Replicas: []Backend{hang, NewLocalBackend("s0-r1", 1, shardIxs[0])}},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatalf("hedged query should succeed, got %v", err)
	}
	assertSameSeqs(t, res.Sequences, monolithTopK(t, mono, rankedSQL))
	if len(res.Partition.Degraded) != 1 {
		t.Fatalf("partition = %+v, want s0 degraded via hedge", res.Partition)
	}
	sh := c.byName["s0"]
	if sh.hedges.Value() == 0 || sh.hedgeWins.Value() == 0 {
		t.Fatalf("hedges=%d wins=%d, want both > 0", sh.hedges.Value(), sh.hedgeWins.Value())
	}
}

// An invalid statement is fatal for the whole query — no failover, no
// degradation, a *BadRequestError.
func TestBadStatementsAreFatal(t *testing.T) {
	shardIxs, _ := buildWorld(t, 1)
	c, err := New(localShards(shardIxs), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var bad *BadRequestError
	if _, err := c.TopK(context.Background(), "SELECT nonsense"); !errors.As(err, &bad) {
		t.Fatalf("parse error should be BadRequestError, got %v", err)
	}
	online := `SELECT clipID FROM (PROCESS repo PRODUCE clipID, act USING ActionRecognizer) WHERE act='jumping'`
	if _, err := c.TopK(context.Background(), online); !errors.As(err, &bad) {
		t.Fatalf("online statement should be BadRequestError, got %v", err)
	}
}

// The kill → breaker-open → health-probe → recovery lifecycle, driven by a
// fake clock and a deterministic down-window fault plan.
func TestBreakerFailoverAndRecovery(t *testing.T) {
	shardIxs, mono := buildWorld(t, 1)
	// Primary: query calls 1-2 dead, serving again from call 3.
	primary := NewFaultBackend(NewLocalBackend("s0-r0", 1, shardIxs[0]),
		FaultPlan{DownFrom: 1, UpFrom: 3})
	secondary := NewLocalBackend("s0-r1", 1, shardIxs[0])
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	cfg := fastConfig()
	cfg.Breaker = BreakerConfig{Threshold: 1, Cooloff: 30 * time.Second, now: clk.Now}
	c, err := New([]ShardSpec{{Name: "s0", Replicas: []Backend{primary, secondary}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := monolithTopK(t, mono, rankedSQL)
	run := func(t *testing.T) *TopKResult {
		t.Helper()
		res, err := c.TopK(context.Background(), rankedSQL)
		if err != nil {
			t.Fatalf("query failed: %v", err)
		}
		assertSameSeqs(t, res.Sequences, want)
		return res
	}

	// Query 1: primary dead (call 1) → breaker trips → failover.
	res := run(t)
	if res.Shards[0].Outcome != "degraded" || res.Shards[0].Replica != "s0-r1" {
		t.Fatalf("q1 outcome = %+v, want degraded via s0-r1", res.Shards[0])
	}
	if c.shards[0].replicas[0].breaker.State() != BreakerOpen {
		t.Fatal("q1: primary breaker should be open")
	}

	// Query 2: breaker open → secondary directly, primary never called.
	calls := primary.Calls()
	res = run(t)
	if primary.Calls() != calls {
		t.Fatalf("q2: open breaker let %d call(s) through", primary.Calls()-calls)
	}
	if res.Shards[0].Outcome != "degraded" || res.Shards[0].Attempts != 1 {
		t.Fatalf("q2 outcome = %+v, want degraded in one attempt via secondary", res.Shards[0])
	}

	// Cool-off elapses: the half-open probe hits the still-dead primary
	// (call 2), re-opens, and the query falls over again.
	clk.Advance(31 * time.Second)
	res = run(t)
	if res.Shards[0].Outcome != "degraded" || res.Shards[0].Attempts < 2 {
		t.Fatalf("q3 outcome = %+v, want failover after failed probe", res.Shards[0])
	}

	// Cool-off again: the replica has restarted (call 3 serves), the
	// half-open probe succeeds, the breaker closes, and the shard is ok.
	clk.Advance(31 * time.Second)
	res = run(t)
	if res.Shards[0].Outcome != "ok" || res.Shards[0].Replica != "s0-r0" {
		t.Fatalf("q4 outcome = %+v, want ok via recovered primary", res.Shards[0])
	}
	if st := c.shards[0].replicas[0].breaker.State(); st != BreakerClosed {
		t.Fatalf("q4: primary breaker = %v, want closed", st)
	}
}

// Health probes feed the breakers: ProbeAll on a dead replica trips its
// breaker before any query pays for the discovery, and a later probe of
// the recovered replica closes it again.
func TestHealthProbesDriveBreakers(t *testing.T) {
	shardIxs, _ := buildWorld(t, 1)
	primary := NewLocalBackend("s0-r0", 1, shardIxs[0])
	cfg := fastConfig()
	cfg.Breaker = BreakerConfig{Threshold: 1, Cooloff: time.Hour}
	c, err := New([]ShardSpec{{Name: "s0", Replicas: []Backend{primary,
		NewLocalBackend("s0-r1", 1, shardIxs[0])}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	primary.Close()
	c.ProbeAll(context.Background())
	if st := c.shards[0].replicas[0].breaker.State(); st != BreakerOpen {
		t.Fatalf("breaker after failed probe = %v, want open", st)
	}
	st := c.Status()
	if st[0].Replicas[0].LastError == "" || st[0].Replicas[0].Breaker != "open" {
		t.Fatalf("status = %+v, want open breaker with last error", st[0].Replicas[0])
	}
	// Queries now skip the primary without spending an attempt on it.
	res, err := c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards[0].Attempts != 1 || res.Shards[0].Replica != "s0-r1" {
		t.Fatalf("outcome = %+v, want single-attempt answer via secondary", res.Shards[0])
	}
	// Restart: a passing probe closes the breaker without waiting out the
	// cool-off.
	primary.Reopen()
	c.ProbeAll(context.Background())
	if st := c.shards[0].replicas[0].breaker.State(); st != BreakerClosed {
		t.Fatalf("breaker after passing probe = %v, want closed", st)
	}
}

// The fault-harness property test: under a deterministic mix of injected
// replica errors, every query either returns the exact monolith top-k or
// a typed degraded answer that is still exact for the surviving shards.
// Run with -race: the scatter, hedging and retry machinery is concurrent.
func TestFaultedClusterNeverWrong(t *testing.T) {
	shardIxs, mono := buildWorld(t, 2)
	mk := func(shardIx int, rep int, plan FaultPlan) Backend {
		name := fmt.Sprintf("s%d-r%d", shardIx, rep)
		return NewFaultBackend(NewLocalBackend(name, 1, shardIxs[shardIx]), plan)
	}
	specs := []ShardSpec{
		{Name: "s0", Replicas: []Backend{
			mk(0, 0, FaultPlan{Seed: 1, ErrorRate: 0.3}),
			mk(0, 1, FaultPlan{Seed: 2, ErrorRate: 0.3}),
		}},
		{Name: "s1", Replicas: []Backend{
			mk(1, 0, FaultPlan{Seed: 3, ErrorRate: 0.3, DelayRate: 0.2, Delay: 2 * time.Millisecond}),
			mk(1, 1, FaultPlan{Seed: 4, ErrorRate: 0.3}),
		}},
	}
	cfg := fastConfig()
	cfg.AttemptsPerReplica = 4
	cfg.HedgeAfter = 20 * time.Millisecond
	c, err := New(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := monolithTopK(t, mono, rankedSQL)
	okCount, degradedCount := 0, 0
	for i := 0; i < 40; i++ {
		res, err := c.TopK(context.Background(), rankedSQL)
		var deg *DegradedError
		switch {
		case err == nil:
			assertSameSeqs(t, res.Sequences, want)
			if res.Degraded() {
				degradedCount++
			} else {
				okCount++
			}
		case errors.As(err, &deg):
			// Whole-shard loss: with 0.3 error rate and 8 attempts this
			// is vanishingly rare, but if it happens the partial answer
			// must still be exact for the surviving shards.
			degradedCount++
			surviving := map[string]bool{}
			for _, s := range res.Partition.OK {
				surviving[s] = true
			}
			for _, s := range res.Partition.Degraded {
				surviving[s] = true
			}
			var expect []RankedSeq
			for _, s := range want {
				if surviving[fmt.Sprintf("s%d", ShardOf(s.Video, 2))] {
					expect = append(expect, s)
				}
			}
			for _, g := range res.Sequences {
				found := false
				for _, w := range expect {
					if seqKey(g) == seqKey(w) {
						found = true
					}
				}
				if !found {
					t.Fatalf("degraded answer contains %s not in surviving monolith set", seqKey(g))
				}
			}
		default:
			t.Fatalf("query %d: unexpected terminal error %v", i, err)
		}
	}
	if okCount+degradedCount != 40 {
		t.Fatalf("accounted %d+%d of 40 queries", okCount, degradedCount)
	}
	if degradedCount == 0 {
		t.Fatal("fault plan injected no faults — schedule is not exercising retries")
	}
	t.Logf("ok=%d degraded=%d retries(s0)=%d retries+failovers(s1)=%d",
		okCount, degradedCount,
		c.byName["s0"].failovers.Value()+c.byName["s0"].retries.Value(),
		c.byName["s1"].failovers.Value()+c.byName["s1"].retries.Value())
}

// Deterministic jitter: identical coordinators replay identical backoff
// schedules; different seeds diverge.
func TestBackoffDeterministicJitter(t *testing.T) {
	shardIxs, _ := buildWorld(t, 1)
	mk := func(seed uint64) *Coordinator {
		cfg := fastConfig()
		cfg.Seed = seed
		c, err := New(localShards(shardIxs), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	req := Request{SQL: rankedSQL, QueryID: "deadbeefdeadbeef"}
	a, b, other := mk(7), mk(7), mk(8)
	for attempt := 1; attempt <= 4; attempt++ {
		if d1, d2 := a.backoff(req, "s0", attempt, 0), b.backoff(req, "s0", attempt, 0); d1 != d2 {
			t.Fatalf("attempt %d: same seed gave %v vs %v", attempt, d1, d2)
		}
		if a.backoff(req, "s0", attempt, 0) == other.backoff(req, "s0", attempt, 0) {
			t.Fatalf("attempt %d: different seeds gave identical jitter", attempt)
		}
		base, jittered := fastConfig().BaseBackoff, a.backoff(req, "s0", attempt, 0)
		max := fastConfig().MaxBackoff
		if jittered < base/2 || jittered > max+max/2 {
			t.Fatalf("attempt %d: backoff %v outside [base/2, 1.5*max]", attempt, jittered)
		}
	}
}
