package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"svqact/internal/obs"
	"svqact/internal/rank"
	"svqact/internal/sqlq"
)

// LocalBackend serves one shard from an in-process rank.Index — the test
// harness's replica, and the embedded single-process cluster mode. It
// implements the same ranked contract as a cmd/serve -repo process:
// offline statements only, honouring the coordinator's K override, and
// reporting Truncated/ResidualUpper for the distributed threshold.
type LocalBackend struct {
	name string

	// state is the serving (generation, index) pair, swapped atomically so
	// every query sees one consistent generation; staged is the next pair a
	// Reload will promote — the in-process equivalent of a committed
	// on-disk generation behind the CURRENT pointer.
	state  atomic.Pointer[localState]
	staged atomic.Pointer[localState]

	closed atomic.Bool
}

type localState struct {
	gen int
	ix  *rank.Index
}

// NewLocalBackend wraps a merged shard index. gen is reported as the
// serving generation.
func NewLocalBackend(name string, gen int, ix *rank.Index) *LocalBackend {
	b := &LocalBackend{name: name}
	b.state.Store(&localState{gen: gen, ix: ix})
	return b
}

// Close makes the backend refuse further queries — the in-process
// equivalent of killing the serving process.
func (b *LocalBackend) Close() { b.closed.Store(true) }

// Reopen reverses Close — the replica restarting.
func (b *LocalBackend) Reopen() { b.closed.Store(false) }

func (b *LocalBackend) Name() string { return b.name }

// StageGeneration stages the next (generation, index) pair for Reload to
// promote — the in-process analogue of committing a new generation to the
// shard's repository directory.
func (b *LocalBackend) StageGeneration(gen int, ix *rank.Index) {
	b.staged.Store(&localState{gen: gen, ix: ix})
}

// Reload promotes the staged generation, mirroring the serve process's
// fail-closed POST /repo/reload: with nothing staged the serving
// generation is simply re-reported (reloading to the same generation is a
// no-op, not an error), and a closed backend errors with the old state
// intact.
func (b *LocalBackend) Reload(ctx context.Context) (int, error) {
	if b.closed.Load() {
		return 0, &replicaError{Replica: b.name, Err: errors.New("backend closed")}
	}
	if next := b.staged.Swap(nil); next != nil {
		b.state.Store(next)
	}
	return b.state.Load().gen, nil
}

// Generation reports the serving generation.
func (b *LocalBackend) Generation(ctx context.Context) (int, error) {
	if b.closed.Load() {
		return 0, &replicaError{Replica: b.name, Err: errors.New("backend closed")}
	}
	return b.state.Load().gen, nil
}

// Healthy reports whether the backend can serve.
func (b *LocalBackend) Healthy(context.Context) error {
	if b.closed.Load() {
		return &replicaError{Replica: b.name, Err: errors.New("backend closed")}
	}
	return nil
}

// Query parses and answers one ranked statement against the shard index.
// Like a real serve process, the backend runs under its own trace — span
// offsets are relative to its own start — and reports the snapshot in the
// response, so the coordinator's graft path is exercised in-process too.
func (b *LocalBackend) Query(ctx context.Context, req Request) (*Response, error) {
	if b.closed.Load() {
		return nil, &replicaError{Replica: b.name, Err: errors.New("backend closed")}
	}
	// One atomic load: the whole query answers from a single consistent
	// (generation, index) pair even if a Reload swaps mid-flight.
	cur := b.state.Load()
	ltrace := obs.NewTrace(req.QueryID)
	ltrace.SetRemoteParent(req.ParentSpan)
	ctx = obs.WithTrace(ctx, ltrace)
	st, err := sqlq.Parse(req.SQL)
	if err != nil {
		return nil, &BadRequestError{Msg: err.Error()}
	}
	plan, err := st.Plan()
	if err != nil {
		return nil, &BadRequestError{Msg: err.Error()}
	}
	if plan.Online {
		return nil, &BadRequestError{Msg: "cluster: only ranked (ORDER BY rank() LIMIT k) statements shard"}
	}
	k := plan.K
	if req.K > 0 {
		k = req.K
	}
	var res *rank.Result
	if plan.Extended {
		res, err = rank.RVAQCNF(ctx, cur.ix, plan.CNF, k, rank.Options{})
	} else {
		res, err = rank.RVAQ(ctx, cur.ix, plan.Query, k, rank.Options{})
	}
	if err != nil {
		var miss *rank.NotIngestedError
		if errors.As(err, &miss) {
			// A shard holding a partial vocabulary answers "no candidates
			// here" for types it never ingested — other shards may hold
			// them, so this is neither a client nor a replica error.
			return &Response{Shard: b.name, Replica: b.name, Generation: cur.gen, Trace: ltrace.Snapshot()}, nil
		}
		return nil, &replicaError{Replica: b.name, Err: fmt.Errorf("shard query: %w", err)}
	}
	resp := &Response{
		Shard:         b.name,
		Replica:       b.name,
		Generation:    cur.gen,
		Candidates:    res.Candidates,
		Truncated:     res.Truncated,
		ResidualUpper: res.ResidualUpper,
		Trace:         ltrace.Snapshot(),
	}
	for _, sr := range res.Sequences {
		vid, local := cur.ix.Resolve(sr.Seq.Start)
		resp.Sequences = append(resp.Sequences, RankedSeq{
			Video:     vid,
			StartClip: local,
			EndClip:   local + sr.Seq.Len() - 1,
			Score:     sr.Score(),
			Lower:     sr.Lower,
			Upper:     sr.Upper,
			Exact:     sr.Exact,
		})
	}
	return resp, nil
}
