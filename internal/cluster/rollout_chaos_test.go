package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"svqact/internal/rank"
)

// Chaos coverage for the rolling generation swap: concurrent query load
// runs through an in-flight rollout with injected reload failures, crashed
// replicas and torn commits, and every answer is checked against what the
// shards' generations actually scored — answers are never wrong, only
// (flagged) mixed, and the rollout either completes or halts with the old
// generation serving.

// genWorld is one generation's ground truth: the shard indexes, the
// monolith, and a per-shard map of every sequence's exact score.
type genWorld struct {
	shardIxs []*rank.Index
	mono     *rank.Index
	// scores[shard][seqKey] is the exact score that shard's index gives
	// the sequence at this generation.
	scores []map[string]float64
}

func newGenWorld(t *testing.T, n int, base int64) *genWorld {
	t.Helper()
	shardIxs, mono := buildWorldSeeded(t, n, base)
	w := &genWorld{shardIxs: shardIxs, mono: mono}
	for i, ix := range shardIxs {
		b := NewLocalBackend(fmt.Sprintf("truth-s%d", i), 1, ix)
		resp, err := b.Query(context.Background(), Request{SQL: rankedSQLK(64)})
		if err != nil {
			t.Fatalf("ground-truth query shard %d: %v", i, err)
		}
		m := map[string]float64{}
		for _, s := range resp.Sequences {
			m[seqKey(s)] = s.Score
		}
		w.scores = append(w.scores, m)
	}
	return w
}

// shardOfMember maps each member video to its shard index under the same
// hash placement the worlds use.
func shardOfMember(n int) map[string]int {
	out := map[string]int{}
	for si, g := range PartitionMembers(testMembers, n) {
		for _, m := range g {
			out[m] = si
		}
	}
	return out
}

// checkAnswer verifies one scatter-gather answer against the per-(gen,
// shard) ground truth: every returned sequence must carry the exact score
// its shard's reported generation gives it, scores must be non-increasing,
// and differing generations must be flagged. Returns an error instead of
// failing so worker goroutines can report.
func checkAnswer(res *TopKResult, worlds map[int]*genWorld, memberShard map[string]int) error {
	seen := 0
	for _, g := range res.Generations {
		if g <= 0 {
			continue
		}
		if seen == 0 {
			seen = g
		} else if g != seen && !res.MixedGenerations {
			return fmt.Errorf("generations %v merged without the mixed flag", res.Generations)
		}
	}
	for i, s := range res.Sequences {
		if i > 0 && s.Score > res.Sequences[i-1].Score+1e-9 {
			return fmt.Errorf("sequence %d (%s) out of order: %v after %v",
				i, seqKey(s), s.Score, res.Sequences[i-1].Score)
		}
		si, ok := memberShard[s.Video]
		if !ok {
			return fmt.Errorf("sequence %s from unknown member", seqKey(s))
		}
		gen := res.Generations[fmt.Sprintf("s%d", si)]
		w, ok := worlds[gen]
		if !ok {
			return fmt.Errorf("sequence %s attributed to unknown generation %d", seqKey(s), gen)
		}
		want, ok := w.scores[si][seqKey(s)]
		if !ok {
			return fmt.Errorf("sequence %s does not exist in shard %d at generation %d", seqKey(s), si, gen)
		}
		if diff := s.Score - want; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("sequence %s: score %v, want %v (shard %d gen %d)", seqKey(s), s.Score, want, si, gen)
		}
	}
	return nil
}

// chaosCluster builds n shards x replicasPer replicas: LocalBackends on
// generation 1 with generation 2 staged, each wrapped in a FaultBackend
// whose plan comes from plan(shard, replica).
func chaosCluster(t *testing.T, w1, w2 *genWorld, replicasPer int, plan func(si, ri int) FaultPlan) (*Coordinator, [][]*FaultBackend) {
	t.Helper()
	var specs []ShardSpec
	var faults [][]*FaultBackend
	for si := range w1.shardIxs {
		spec := ShardSpec{Name: fmt.Sprintf("s%d", si)}
		var row []*FaultBackend
		for ri := 0; ri < replicasPer; ri++ {
			inner := NewLocalBackend(fmt.Sprintf("s%d-r%d", si, ri), 1, w1.shardIxs[si])
			inner.StageGeneration(2, w2.shardIxs[si])
			fb := NewFaultBackend(inner, plan(si, ri))
			row = append(row, fb)
			spec.Replicas = append(spec.Replicas, fb)
		}
		specs = append(specs, spec)
		faults = append(faults, row)
	}
	cfg := fastConfig()
	cfg.MaxConcurrent = 8
	c, err := New(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, faults
}

// chaosLoad runs workers querying the coordinator until stop flips,
// verifying every answer. Overload sheds are tolerated (counted), wrong
// answers are not.
func chaosLoad(c *Coordinator, workers int, stop *atomic.Bool, worlds map[int]*genWorld, memberShard map[string]int) (wait func() []error) {
	var mu sync.Mutex
	var errs []error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				res, err := c.TopK(context.Background(), rankedSQLK(2+(w+i)%3))
				if err != nil {
					var over *OverloadError
					var deg *DegradedError
					switch {
					case errors.As(err, &over):
						continue // shed under pressure: allowed, never wrong
					case errors.As(err, &deg) && res != nil:
						// Whole-shard loss: the partial answer alongside must
						// still be exact for the surviving shards — verified
						// below like any other answer.
					default:
						mu.Lock()
						errs = append(errs, fmt.Errorf("worker %d query %d: %w", w, i, err))
						mu.Unlock()
						return
					}
				}
				if verr := checkAnswer(res, worlds, memberShard); verr != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("worker %d query %d: %w", w, i, verr))
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	return func() []error {
		wg.Wait()
		return errs
	}
}

// TestRolloutChaosHaltAndRepair drives concurrent load through a rollout
// whose s1-r0 reload tears deterministically: the first rollout must halt
// with the old generation still serving (and mixed answers flagged), the
// re-run after repair must complete, and no answer at any point may
// disagree with the per-generation ground truth.
func TestRolloutChaosHaltAndRepair(t *testing.T) {
	w1 := newGenWorld(t, 3, 100)
	w2 := newGenWorld(t, 3, 200)
	worlds := map[int]*genWorld{1: w1, 2: w2}
	memberShard := shardOfMember(3)

	c, _ := chaosCluster(t, w1, w2, 2, func(si, ri int) FaultPlan {
		if si == 1 && ri == 0 {
			// First reload tears; the repair (second reload) succeeds.
			return FaultPlan{Seed: 11, ReloadFailFrom: 1, ReloadOKFrom: 2}
		}
		return FaultPlan{Seed: uint64(11 + si*10 + ri)}
	})

	var stop atomic.Bool
	wait := chaosLoad(c, 4, &stop, worlds, memberShard)

	err := c.RunRollout(context.Background(), RolloutConfig{CanarySQL: rankedSQL})
	if err == nil {
		t.Error("rollout with a torn reload reported success")
	}

	// Mid-halt: s0 swapped, s1 and s2 still on the old generation. A
	// direct query must be flagged mixed, and per-shard answers must still
	// match each shard's serving generation (checked by the workers too).
	res, qerr := c.TopK(context.Background(), rankedSQLK(3))
	if qerr != nil {
		t.Fatalf("query after halt: %v", qerr)
	}
	if !res.MixedGenerations || !res.Degraded() {
		t.Errorf("post-halt answer not flagged mixed: generations %v", res.Generations)
	}
	if res.Generations["s0"] != 2 || res.Generations["s1"] != 1 || res.Generations["s2"] != 1 {
		t.Errorf("post-halt generations = %v, want s0:2 s1:1 s2:1", res.Generations)
	}
	if verr := checkAnswer(res, worlds, memberShard); verr != nil {
		t.Errorf("post-halt answer wrong: %v", verr)
	}

	// Repaired: the re-run walks already-swapped replicas as no-ops and
	// completes; the cluster converges on generation 2.
	if err := c.RunRollout(context.Background(), RolloutConfig{CanarySQL: rankedSQL}); err != nil {
		t.Fatalf("re-run after repair: %v", err)
	}
	stop.Store(true)
	for _, werr := range wait() {
		t.Error(werr)
	}
	assertNoHeldBreakers(t, c)

	final, err := c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	if final.MixedGenerations || final.Degraded() {
		t.Fatalf("final answer degraded: generations %v partition %+v", final.Generations, final.Partition)
	}
	assertSameSeqs(t, final.Sequences, monolithTopK(t, w2.mono, rankedSQL))
}

// TestRolloutChaosRateFaults layers probabilistic faults — transient
// errors, 429 throttles with Retry-After hints, and a crashed-then-
// restarted replica — under concurrent load with a rollout in flight. The
// invariants are weaker but unconditional: answers always match their
// shards' reported generations, mixed merges are always flagged, the
// rollout reaches a terminal state, and no breaker stays held.
func TestRolloutChaosRateFaults(t *testing.T) {
	w1 := newGenWorld(t, 3, 100)
	w2 := newGenWorld(t, 3, 200)
	worlds := map[int]*genWorld{1: w1, 2: w2}
	memberShard := shardOfMember(3)

	c, _ := chaosCluster(t, w1, w2, 2, func(si, ri int) FaultPlan {
		p := FaultPlan{
			Seed:               uint64(31 + si*10 + ri),
			ErrorRate:          0.05,
			ThrottleRate:       0.05,
			ThrottleRetryAfter: 10 * time.Millisecond,
		}
		if si == 2 && ri == 1 {
			// A replica crash mid-run, restarting later.
			p.DownFrom, p.UpFrom = 10, 40
		}
		return p
	})

	var stop atomic.Bool
	wait := chaosLoad(c, 4, &stop, worlds, memberShard)
	rerr := c.RunRollout(context.Background(), RolloutConfig{CanarySQL: rankedSQL, DrainWait: 5 * time.Millisecond})
	stop.Store(true)
	for _, werr := range wait() {
		t.Error(werr)
	}

	st := c.RolloutStatus()
	if st.State != "done" && st.State != "failed" {
		t.Fatalf("rollout never reached a terminal state: %q", st.State)
	}
	if (rerr == nil) != (st.State == "done") {
		t.Fatalf("rollout error %v inconsistent with state %q", rerr, st.State)
	}
	assertNoHeldBreakers(t, c)

	// Whatever happened, every shard still answers from a generation whose
	// ground truth it matches (the down window has passed: UpFrom
	// restarted the crashed replica, though retries may need a moment).
	res, err := c.TopK(context.Background(), rankedSQL)
	if err != nil {
		var deg *DegradedError
		if !errors.As(err, &deg) || res == nil {
			t.Fatalf("post-chaos query: %v", err)
		}
	}
	if verr := checkAnswer(res, worlds, memberShard); verr != nil {
		t.Fatalf("post-chaos answer wrong: %v", verr)
	}
	if rerr == nil {
		for sh, g := range res.Generations {
			if g != 2 {
				t.Fatalf("rollout done but shard %s serves generation %d", sh, g)
			}
		}
	}
}
