// Package cluster is the scatter-gather serving tier: a coordinator
// partitions a generation-based repository by video into shards (each
// served by a cmd/serve -repo process, or by an in-process backend in
// tests), fans ranked queries out to every shard, and merges the per-shard
// top-k lists using RVAQ's score bounds as a distributed threshold
// algorithm — a shard whose best possible residual upper bound falls below
// the global k-th lower bound (Blo_K) holds nothing further worth pulling.
//
// The tier is built for partial failure, not for the happy path:
//
//   - every shard has a replica set with health-checked failover;
//   - transient replica errors retry with exponential backoff and
//     deterministic jitter (keyed on query, shard and attempt, so failover
//     schedules replay identically in tests);
//   - slow replicas are hedged: after an adaptive latency percentile the
//     coordinator races a second replica and takes the first answer;
//   - repeatedly failing replicas trip a per-replica circuit breaker and
//     stop being tried until a cool-off probe passes;
//   - the coordinator's deadline propagates to every shard call via
//     context;
//   - and when a whole shard's replica set is exhausted the query degrades
//     gracefully: the response still carries the merged top-k of the
//     surviving shards plus a shards {ok, degraded, failed} partition
//     (mirroring the fleet's per-video outcome partition) and a typed
//     *DegradedError instead of a hard failure.
package cluster

import (
	"context"
	"fmt"
	"strings"
	"time"

	"svqact/internal/obs"
	"svqact/internal/rank"
	"svqact/internal/video"
)

// Request is what the coordinator sends one shard replica: the statement
// text plus the coordinator's top-k override for distributed-threshold
// refinement rounds and the query ID for cross-tier correlation.
// ParentSpan carries the coordinator-side span id of the attempt issuing
// the request (the X-SVQ-Parent-Span header), so the shard's own trace can
// be grafted back under the right attempt in the assembled tree.
type Request struct {
	SQL        string
	K          int
	QueryID    string
	ParentSpan string
}

// RankedSeq is one merged result sequence, identified by its member video
// and member-local clip range (video spans are disjoint across shards, so
// the pair is globally unique). Lower/Upper/Exact are the rank.Bounds the
// merge operated on.
type RankedSeq struct {
	Video     string  `json:"video"`
	StartClip int     `json:"start_clip"`
	EndClip   int     `json:"end_clip"`
	Score     float64 `json:"score"`
	Lower     float64 `json:"lower"`
	Upper     float64 `json:"upper"`
	Exact     bool    `json:"exact,omitempty"`
	Shard     string  `json:"shard,omitempty"`
}

// Bounds converts the sequence into the rank-layer bounds the distributed
// threshold computations (Blo_K, separation) operate on. The interval is
// the member-local clip range; only the score bounds matter to the merge.
func (s RankedSeq) Bounds() rank.Bounds {
	return rank.Bounds{
		Seq:   video.Interval{Start: s.StartClip, End: s.EndClip},
		Lo:    s.Lower,
		Up:    s.Upper,
		Exact: s.Exact,
	}
}

// Response is one shard's answer to a ranked Request.
type Response struct {
	// Shard and Replica attribute the answer; Generation is the
	// repository generation that served it.
	Shard      string
	Replica    string
	Generation int
	Sequences  []RankedSeq
	// Candidates counts the shard's candidate sequences; Truncated and
	// ResidualUpper mirror rank.Result — the shard holds candidates
	// beyond the returned top-k, all scoring at most ResidualUpper.
	Candidates    int
	Truncated     bool
	ResidualUpper float64
	// Trace is the shard's own span tree for this request, when the shard
	// reported one; the coordinator grafts it under the winning attempt's
	// span.
	Trace *obs.TraceSnapshot
}

// Backend answers ranked queries for one shard replica. Implementations:
// HTTPBackend (a cmd/serve -repo process), LocalBackend (in-process index,
// the test and embedded mode) and FaultBackend (deterministic fault
// injection around either).
type Backend interface {
	// Name identifies the replica (address or label) in logs and metrics.
	Name() string
	// Query answers one ranked request, honouring ctx.
	Query(ctx context.Context, req Request) (*Response, error)
	// Healthy probes the replica; nil means it can serve.
	Healthy(ctx context.Context) error
}

// Partition is the per-shard outcome partition of one coordinator query —
// the cluster analogue of the fleet's ok/degraded/… video partition. A
// shard is ok when its primary answered first try, degraded when it
// answered only after retry, failover or hedging, and failed when its
// whole replica set was exhausted.
type Partition struct {
	OK       []string `json:"ok"`
	Degraded []string `json:"degraded,omitempty"`
	Failed   []string `json:"failed,omitempty"`
}

// Merge folds another partition in, keeping each shard's worst outcome
// (failed > degraded > ok) — the batch-level aggregation.
func (p *Partition) Merge(q Partition) {
	rank := func(shard string) int {
		for _, s := range p.Failed {
			if s == shard {
				return 2
			}
		}
		for _, s := range p.Degraded {
			if s == shard {
				return 1
			}
		}
		for _, s := range p.OK {
			if s == shard {
				return 0
			}
		}
		return -1
	}
	drop := func(list []string, shard string) []string {
		out := list[:0]
		for _, s := range list {
			if s != shard {
				out = append(out, s)
			}
		}
		return out
	}
	fold := func(shards []string, level int) {
		for _, s := range shards {
			cur := rank(s)
			if cur >= level {
				continue
			}
			if cur >= 0 {
				p.OK = drop(p.OK, s)
				p.Degraded = drop(p.Degraded, s)
				p.Failed = drop(p.Failed, s)
			}
			switch level {
			case 0:
				p.OK = append(p.OK, s)
			case 1:
				p.Degraded = append(p.Degraded, s)
			case 2:
				p.Failed = append(p.Failed, s)
			}
		}
	}
	fold(q.OK, 0)
	fold(q.Degraded, 1)
	fold(q.Failed, 2)
}

// DegradedError reports a scatter that lost one or more whole shards: the
// result alongside it is the correct merged top-k of the surviving shards,
// not the full repository. It mirrors core.DegradedError's
// partial-result-with-typed-error contract.
type DegradedError struct {
	// Failed names the shards whose replica sets were exhausted;
	// Degraded the shards that answered only via retry/failover/hedging.
	Failed   []string
	Degraded []string
	// Err is a sample failure from one exhausted shard.
	Err error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("cluster: degraded answer: shards [%s] failed (degraded: [%s]): %v",
		strings.Join(e.Failed, " "), strings.Join(e.Degraded, " "), e.Err)
}

// Unwrap exposes the sample shard failure to errors.Is/As.
func (e *DegradedError) Unwrap() error { return e.Err }

// BadRequestError marks a rejection retrying cannot fix — the statement
// itself is invalid or unsupported. The coordinator propagates it to the
// client instead of failing over.
type BadRequestError struct{ Msg string }

func (e *BadRequestError) Error() string { return e.Msg }

// OverloadError reports a query shed by the coordinator's admission gate
// before any shard work was done: the concurrency limit is saturated and
// the request could not (or, given its deadline, must not) wait out the
// admission queue. Clients should retry after RetryAfter — the HTTP layer
// maps it to 429 + Retry-After, the same contract internal/server speaks.
type OverloadError struct {
	// Reason: "queue_full" (admission queue at capacity), "saturated"
	// (queued the full wait without a slot freeing), "deadline" (the
	// request's deadline cannot survive the queue), or "backpressure"
	// (a shard is telling the cluster to slow down and no slot is free).
	Reason     string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("cluster: coordinator overloaded (%s); retry in %s", e.Reason, e.RetryAfter)
}

// Reloader is the optional rollout surface of a Backend: triggering a
// repository generation swap on the replica and reading the generation it
// is serving. HTTPBackend maps it onto cmd/serve's POST /repo/reload and
// GET /repo/status; LocalBackend promotes a staged in-process index.
// Backends that do not implement it cannot be walked by `svq rollout`.
type Reloader interface {
	// Reload asks the replica to swap to the newest committed repository
	// generation and returns the generation serving afterwards. Replicas
	// fail reload closed: on error the old generation keeps serving.
	Reload(ctx context.Context) (generation int, err error)
	// Generation reports the repository generation currently serving.
	Generation(ctx context.Context) (generation int, err error)
}

// replicaError wraps a transient replica failure with its attribution.
type replicaError struct {
	Replica string
	Status  int // HTTP status when known, 0 for transport errors
	// RetryAfter carries the replica's Retry-After hint on 429/503
	// answers; the coordinator folds it into retry backoff and the
	// shard's backpressure signal. 0 means no hint.
	RetryAfter time.Duration
	Err        error
}

func (e *replicaError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("replica %s: status %d: %v", e.Replica, e.Status, e.Err)
	}
	return fmt.Sprintf("replica %s: %v", e.Replica, e.Err)
}

func (e *replicaError) Unwrap() error { return e.Err }
