package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"svqact/internal/obs"
)

// topKTraced runs one scatter-gather under a fresh trace and returns the
// assembled snapshot.
func topKTraced(t *testing.T, c *Coordinator, sql string) (*TopKResult, *obs.TraceSnapshot, error) {
	t.Helper()
	tr := obs.NewTrace("feedc0defeedc0de")
	ctx := obs.WithTrace(context.Background(), tr)
	res, err := c.TopK(ctx, sql)
	return res, tr.Snapshot(), err
}

// findAll returns every node in the forest whose name matches.
func findAll(ns []*obs.SpanNode, name string) []*obs.SpanNode {
	var out []*obs.SpanNode
	var walk func(ns []*obs.SpanNode)
	walk = func(ns []*obs.SpanNode) {
		for _, n := range ns {
			if n.Name == name {
				out = append(out, n)
			}
			walk(n.Children)
		}
	}
	walk(ns)
	return out
}

// subtreeNames collects the names of every descendant (not the node itself).
func subtreeNames(n *obs.SpanNode) []string {
	var out []string
	var walk func(ns []*obs.SpanNode)
	walk = func(ns []*obs.SpanNode) {
		for _, c := range ns {
			out = append(out, c.Name)
			walk(c.Children)
		}
	}
	walk(n.Children)
	return out
}

// TestTraceAssemblyAcrossShards runs a real scatter over LocalBackends and
// asserts the coordinator trace contains the whole hierarchy: cluster.topk →
// cluster.shard:* → cluster.attempt → the shard's own grafted spans.
func TestTraceAssemblyAcrossShards(t *testing.T) {
	shardIxs, _ := buildWorld(t, 2)
	c, err := New(localShards(shardIxs), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, snap, err := topKTraced(t, c, rankedSQL)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}

	roots := snap.Tree()
	if len(roots) != 1 || roots[0].Name != "cluster.topk" {
		t.Fatalf("want single cluster.topk root, got %d roots (%v)", len(roots), names(snap))
	}
	for _, shardName := range []string{"cluster.shard:s0", "cluster.shard:s1"} {
		shards := findAll(roots, shardName)
		if len(shards) != 1 {
			t.Fatalf("%s spans = %d, want 1 (%v)", shardName, len(shards), names(snap))
		}
		sh := shards[0]
		if sh.Attrs["outcome"] != "ok" {
			t.Errorf("%s outcome = %v", shardName, sh.Attrs["outcome"])
		}
		attempts := findAll(sh.Children, "cluster.attempt")
		if len(attempts) != 1 {
			t.Fatalf("%s attempts = %d, want 1", shardName, len(attempts))
		}
		a := attempts[0]
		if a.Attrs["attempt"] != 1 || a.Attrs["hedged"] != false || a.Attrs["outcome"] != "ok" {
			t.Errorf("%s attempt attrs = %v", shardName, a.Attrs)
		}
		if rep, _ := a.Attrs["replica"].(string); !strings.HasPrefix(rep, strings.TrimPrefix(shardName, "cluster.shard:")) {
			t.Errorf("%s attempt replica = %v", shardName, a.Attrs["replica"])
		}
		// The shard's own execution spans are grafted under the winning
		// attempt: rank.topk must be a descendant of the shard span.
		desc := subtreeNames(a)
		found := false
		for _, n := range desc {
			if n == "rank.topk" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s attempt subtree lacks grafted rank.topk: %v", shardName, desc)
		}
	}
}

// TestGraftedSubtreeMatchesShardReport scripts a replica with a canned trace
// and asserts the assembled tree splices exactly the spans the shard
// reported, re-anchored but otherwise verbatim.
func TestGraftedSubtreeMatchesShardReport(t *testing.T) {
	shardTrace := &obs.TraceSnapshot{
		QueryID:    "feedc0defeedc0de",
		DurationMS: 12,
		Spans: []obs.SpanSnapshot{
			{Name: "rank.topk", ID: "s1", StartMS: 1, DurationMS: 10,
				Attrs: map[string]any{"k": 3}},
			{Name: "predicate:act", ID: "s2", Parent: "s1", StartMS: 2, DurationMS: 4},
		},
	}
	var gotParent string
	b := &stubBackend{name: "s0-r0", fn: func(ctx context.Context, req Request) (*Response, error) {
		gotParent = req.ParentSpan
		return &Response{Shard: "s0", Replica: "s0-r0", Trace: shardTrace}, nil
	}}
	c, err := New([]ShardSpec{{Name: "s0", Replicas: []Backend{b}}}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, snap, err := topKTraced(t, c, rankedSQL)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if !obs.ValidSpanRef(gotParent) {
		t.Errorf("replica saw parent span %q, want a valid span ref", gotParent)
	}

	attempt := snap.Find("cluster.attempt")
	if attempt == nil {
		t.Fatalf("no cluster.attempt span in %v", names(snap))
	}
	// Exactly the shard's reported spans, in the shard's own hierarchy.
	if len(attempt.Children) != 1 {
		t.Fatalf("attempt children = %d, want the shard's single root", len(attempt.Children))
	}
	rank := attempt.Children[0]
	if rank.Name != "rank.topk" || rank.DurationMS != 10 || rank.Attrs["k"] != 3 {
		t.Errorf("grafted root = %+v", rank.SpanSnapshot)
	}
	if rank.StartMS != attempt.StartMS+1 {
		t.Errorf("grafted root StartMS = %v, want re-anchored %v", rank.StartMS, attempt.StartMS+1)
	}
	if len(rank.Children) != 1 || rank.Children[0].Name != "predicate:act" {
		t.Fatalf("grafted hierarchy lost: %+v", subtreeNames(attempt))
	}
	pred := rank.Children[0]
	if pred.DurationMS != 4 || pred.StartMS != attempt.StartMS+2 {
		t.Errorf("grafted child = %+v", pred.SpanSnapshot)
	}
	// Composite ids keep remote ids unique within the coordinator trace.
	if !strings.HasSuffix(rank.ID, "/s1") || !strings.HasSuffix(pred.ID, "/s2") {
		t.Errorf("composite ids = %q / %q", rank.ID, pred.ID)
	}
}

// TestRetryAttemptAttribution fails the primary once and asserts the trace
// carries one cluster.attempt span per attempt, each attributed with
// replica, attempt number, hedged flag and outcome.
func TestRetryAttemptAttribution(t *testing.T) {
	var calls int
	prim := &stubBackend{name: "s0-r0", fn: func(ctx context.Context, req Request) (*Response, error) {
		calls++
		if calls == 1 {
			return nil, &replicaError{Replica: "s0-r0", Err: errors.New("boom")}
		}
		return &Response{Shard: "s0", Replica: "s0-r0"}, nil
	}}
	sec := &stubBackend{name: "s0-r1", fn: func(ctx context.Context, req Request) (*Response, error) {
		return &Response{Shard: "s0", Replica: "s0-r1"}, nil
	}}
	c, err := New([]ShardSpec{{Name: "s0", Replicas: []Backend{prim, sec}}}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, snap, err := topKTraced(t, c, rankedSQL)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if res.Shards[0].Outcome != "degraded" {
		t.Errorf("shard outcome = %s, want degraded (failover)", res.Shards[0].Outcome)
	}
	attempts := findAll(snap.Tree(), "cluster.attempt")
	if len(attempts) != 2 {
		t.Fatalf("attempt spans = %d, want 2 (one per attempt): %v", len(attempts), names(snap))
	}
	first, second := attempts[0], attempts[1]
	if first.StartMS > second.StartMS {
		first, second = second, first
	}
	if first.Attrs["attempt"] != 1 || first.Attrs["outcome"] != "error" || first.Attrs["replica"] != "s0-r0" {
		t.Errorf("first attempt attrs = %v", first.Attrs)
	}
	if errAttr, _ := first.Attrs["error"].(string); !strings.Contains(errAttr, "boom") {
		t.Errorf("first attempt error attr = %v", first.Attrs["error"])
	}
	if second.Attrs["attempt"] != 2 || second.Attrs["outcome"] != "ok" || second.Attrs["replica"] != "s0-r1" {
		t.Errorf("second attempt attrs = %v", second.Attrs)
	}
	shardSpan := snap.Find("cluster.shard:s0")
	if shardSpan == nil || shardSpan.Attrs["outcome"] != "degraded" {
		t.Errorf("shard span attrs = %+v", shardSpan)
	}
}

// TestHedgedAttemptAttribution races a stalled primary against a hedge and
// asserts the hedged attempt is tagged as such.
func TestHedgedAttemptAttribution(t *testing.T) {
	slow := &stubBackend{name: "s0-r0", fn: func(ctx context.Context, req Request) (*Response, error) {
		select {
		case <-time.After(2 * time.Second):
			return &Response{Shard: "s0", Replica: "s0-r0"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}
	fast := &stubBackend{name: "s0-r1", fn: func(ctx context.Context, req Request) (*Response, error) {
		return &Response{Shard: "s0", Replica: "s0-r1"}, nil
	}}
	cfg := fastConfig()
	cfg.HedgeAfter = 5 * time.Millisecond
	c, err := New([]ShardSpec{{Name: "s0", Replicas: []Backend{slow, fast}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, snap, err := topKTraced(t, c, rankedSQL)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if res.Shards[0].Hedges != 1 {
		t.Fatalf("hedges = %d, want 1", res.Shards[0].Hedges)
	}
	var hedged *obs.SpanNode
	for _, a := range findAll(snap.Tree(), "cluster.attempt") {
		if a.Attrs["hedged"] == true {
			hedged = a
		}
	}
	if hedged == nil {
		t.Fatalf("no hedged=true attempt span: %v", names(snap))
	}
	if hedged.Attrs["replica"] != "s0-r1" || hedged.Attrs["outcome"] != "ok" {
		t.Errorf("hedged attempt attrs = %v", hedged.Attrs)
	}
}

func names(snap *obs.TraceSnapshot) []string {
	out := make([]string, len(snap.Spans))
	for i, s := range snap.Spans {
		out[i] = fmt.Sprintf("%s(%s<-%s)", s.Name, s.ID, s.Parent)
	}
	return out
}
