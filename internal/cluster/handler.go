package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"time"

	"svqact/internal/obs"
)

// HTTP front of the coordinator. The surface mirrors the single-process
// server where the contract overlaps (POST /query, GET /healthz, GET
// /metrics, X-Query-ID correlation) and adds the cluster-only pieces:
// POST /query/batch takes a list of ranked statements, and every answer
// carries the shards {ok, degraded, failed} partition so clients can tell
// a complete answer from a gracefully degraded one without parsing errors.

var clusterQueryIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

// QueryAnswer is the coordinator's /query response body (and one entry of
// a /query/batch response).
type QueryAnswer struct {
	QueryID string `json:"query_id,omitempty"`
	SQL     string `json:"sql,omitempty"`
	*TopKResult
	// Degraded flags a partial answer; Error then explains the first
	// shard loss. The HTTP status stays 200: a degraded answer is still
	// an answer.
	Degraded bool   `json:"degraded,omitempty"`
	Error    string `json:"error,omitempty"`
	// Shed marks a batch entry rejected by the admission gate before any
	// shard work; RetryAfterSeconds is its retry hint. A shed entry has
	// no result at all — unlike degraded, which is still an answer.
	Shed              bool               `json:"shed,omitempty"`
	RetryAfterSeconds int                `json:"retry_after_seconds,omitempty"`
	ElapsedMS         int64              `json:"elapsed_ms"`
	Trace             *obs.TraceSnapshot `json:"trace,omitempty"`
}

// BatchAnswer is the coordinator's /query/batch response body.
type BatchAnswer struct {
	QueryID string        `json:"query_id,omitempty"`
	Entries []QueryAnswer `json:"entries"`
	// Shards folds every entry's partition, keeping each shard's worst
	// outcome across the batch.
	Shards    Partition          `json:"shards"`
	Degraded  bool               `json:"degraded,omitempty"`
	ElapsedMS int64              `json:"elapsed_ms"`
	Trace     *obs.TraceSnapshot `json:"trace,omitempty"`
}

type clusterError struct {
	Error string `json:"error"`
}

// Handler returns the coordinator's HTTP mux: POST /query, POST
// /query/batch, GET /healthz, GET /shards, GET|POST /rollout, GET
// /metrics.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", c.handleQuery)
	mux.HandleFunc("/query/batch", c.handleBatch)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/shards", c.handleShards)
	mux.HandleFunc("/rollout", c.handleRollout)
	mux.Handle("/metrics", c.cfg.Registry.Handler())
	mux.Handle("/debug/traces", c.traces.Handler())
	mux.Handle("/debug/traces/", c.traces.Handler())
	return mux
}

// admit mints (or adopts) the query ID and builds the request trace,
// recording the caller's span (X-SVQ-Parent-Span) when one was sent — a
// coordinator can itself sit behind another scatter tier.
func (c *Coordinator) admit(r *http.Request) (string, *obs.Trace) {
	qid := r.Header.Get("X-Query-ID")
	if !clusterQueryIDRe.MatchString(qid) {
		qid = obs.NewQueryID()
	}
	trace := obs.NewTrace(qid)
	if ps := r.Header.Get("X-SVQ-Parent-Span"); obs.ValidSpanRef(ps) {
		trace.SetRemoteParent(ps)
	}
	return qid, trace
}

// offerTrace hands a finished query's trace to the retained store and emits
// the one-line slow/degraded-query log record when it is kept for cause
// (anything but routine sampling).
func (c *Coordinator) offerTrace(snap *obs.TraceSnapshot, sql, outcome string) {
	if snap == nil {
		return
	}
	reason, retained := c.traces.Offer(snap, obs.TraceMeta{SQL: sql, Outcome: outcome})
	if retained && reason != "sampled" {
		c.log.Warn("trace retained", "trace_id", snap.QueryID, "reason", reason,
			"outcome", outcome, "duration_ms", snap.DurationMS, "sql_digest", obs.SQLDigest(sql))
	}
}

func clusterWriteJSON(w http.ResponseWriter, status int, qid string, body any) {
	w.Header().Set("Content-Type", "application/json")
	if qid != "" {
		w.Header().Set("X-Query-ID", qid)
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// runOne scatter-gathers one statement inside the given trace context and
// folds the outcome into a QueryAnswer. Fatal (bad-request) errors come
// back as the second return.
func (c *Coordinator) runOne(r *http.Request, trace *obs.Trace, qid, sql string) (QueryAnswer, error) {
	start := time.Now()
	ctx := obs.WithTrace(r.Context(), trace)
	res, err := c.TopK(ctx, sql)
	ans := QueryAnswer{QueryID: qid, TopKResult: res, ElapsedMS: time.Since(start).Milliseconds()}
	if res != nil && res.Degraded() {
		ans.Degraded = true
	}
	var deg *DegradedError
	switch {
	case err == nil:
	case errors.As(err, &deg):
		ans.Degraded = true
		ans.Error = deg.Error()
	default:
		return ans, err
	}
	return ans, nil
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		clusterWriteJSON(w, http.StatusMethodNotAllowed, "", clusterError{Error: "POST only"})
		return
	}
	var req struct {
		SQL string `json:"sql"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.SQL == "" {
		clusterWriteJSON(w, http.StatusBadRequest, "", clusterError{Error: "body must be {\"sql\": \"...\"}"})
		return
	}
	qid, trace := c.admit(r)
	ans, err := c.runOne(r, trace, qid, req.SQL)
	if err != nil {
		var over *OverloadError
		if errors.As(err, &over) {
			// Same contract as internal/server: 429 + Retry-After in
			// seconds. No trace is offered — a shed request did no work.
			w.Header().Set("Retry-After", retryAfterSeconds(over.RetryAfter))
			clusterWriteJSON(w, http.StatusTooManyRequests, qid, clusterError{Error: err.Error()})
			return
		}
		status := http.StatusInternalServerError
		var bad *BadRequestError
		if errors.As(err, &bad) {
			status = http.StatusBadRequest
		}
		c.offerTrace(trace.Snapshot(), req.SQL, "error")
		clusterWriteJSON(w, status, qid, clusterError{Error: err.Error()})
		return
	}
	ans.Trace = trace.Snapshot()
	status := http.StatusOK
	outcome := "ok"
	if ans.Degraded {
		outcome = "degraded"
	}
	if ans.TopKResult != nil && len(ans.Partition.Failed) == len(c.shards) {
		// Nothing answered at all: that is an outage, not degradation.
		status = http.StatusServiceUnavailable
		outcome = "failed"
	}
	c.offerTrace(ans.Trace, req.SQL, outcome)
	clusterWriteJSON(w, status, qid, ans)
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		clusterWriteJSON(w, http.StatusMethodNotAllowed, "", clusterError{Error: "POST only"})
		return
	}
	var req struct {
		Queries []string `json:"queries"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Queries) == 0 {
		clusterWriteJSON(w, http.StatusBadRequest, "", clusterError{Error: "body must be {\"queries\": [\"...\", ...]}"})
		return
	}
	if len(req.Queries) > 256 {
		clusterWriteJSON(w, http.StatusBadRequest, "", clusterError{Error: "at most 256 queries per batch"})
		return
	}
	qid, trace := c.admit(r)
	start := time.Now()
	out := BatchAnswer{QueryID: qid}
	// Entries run sequentially: batch statements share the replica
	// breakers and fault schedules, and a deterministic call order is
	// what makes kill/failover tests (and incident reconstructions from
	// the trace) replayable.
	shed := 0
	var maxRetryAfter time.Duration
	for _, sql := range req.Queries {
		ans, err := c.runOne(r, trace, qid, sql)
		ans.SQL = sql
		if err != nil {
			var over *OverloadError
			if errors.As(err, &over) {
				// Per-entry shedding: the overloaded entries carry the
				// Retry-After contract; the rest of the batch still ran.
				ans.Shed = true
				ans.Error = err.Error()
				ans.RetryAfterSeconds = ceilSeconds(over.RetryAfter)
				if over.RetryAfter > maxRetryAfter {
					maxRetryAfter = over.RetryAfter
				}
				shed++
				out.Entries = append(out.Entries, ans)
				continue
			}
			ans.Error = err.Error()
			ans.Degraded = true
		}
		if ans.TopKResult != nil {
			out.Shards.Merge(ans.Partition)
		}
		out.Entries = append(out.Entries, ans)
	}
	for _, e := range out.Entries {
		if e.Degraded {
			out.Degraded = true
		}
	}
	out.ElapsedMS = time.Since(start).Milliseconds()
	out.Trace = trace.Snapshot()
	outcome := "ok"
	if out.Degraded {
		outcome = "degraded"
	}
	status := http.StatusOK
	if shed > 0 {
		// Any shed entry sets the batch-level Retry-After; a fully shed
		// batch is itself a 429 (no entry did any work).
		w.Header().Set("Retry-After", retryAfterSeconds(maxRetryAfter))
		if shed == len(out.Entries) {
			status = http.StatusTooManyRequests
		}
	}
	c.offerTrace(out.Trace, strings.Join(req.Queries, "; "), outcome)
	clusterWriteJSON(w, status, qid, out)
}

// ceilSeconds rounds a retry hint up to whole seconds, minimum 1 — the
// Retry-After header granularity internal/server also speaks.
func ceilSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func retryAfterSeconds(d time.Duration) string {
	return strconv.Itoa(ceilSeconds(d))
}

// clusterHealth is the /healthz body.
type clusterHealth struct {
	Status   string        `json:"status"`
	Shards   []ShardStatus `json:"shards"`
	Replicas int           `json:"replicas"`
	// Admission mirrors internal/server's admission-control block.
	Admission AdmissionHealth `json:"admission"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		clusterWriteJSON(w, http.StatusMethodNotAllowed, "", clusterError{Error: "GET only"})
		return
	}
	st := c.Status()
	n := 0
	healthy := true
	for _, sh := range st {
		shardUp := false
		for _, rep := range sh.Replicas {
			n++
			if rep.Breaker != BreakerOpen.String() && rep.LastError == "" {
				shardUp = true
			}
		}
		if !shardUp {
			healthy = false
		}
	}
	body := clusterHealth{Status: "ok", Shards: st, Replicas: n, Admission: c.Admission()}
	status := http.StatusOK
	if !healthy {
		body.Status = "degraded"
	}
	clusterWriteJSON(w, status, "", body)
}

// handleRollout serves the rolling generation swap: GET reports progress,
// POST starts one (409 while another is running). The POST body tunes the
// swap:
//
//	{"canary_sql": "...", "canary_k": 1, "drain_wait_ms": 500,
//	 "require_advance": false}
//
// The rollout runs in the background; clients poll GET /rollout until
// state is "done" or "failed" (which is what `svq rollout` does).
func (c *Coordinator) handleRollout(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		clusterWriteJSON(w, http.StatusOK, "", c.RolloutStatus())
	case http.MethodPost:
		var req struct {
			CanarySQL      string `json:"canary_sql"`
			CanaryK        int    `json:"canary_k"`
			DrainWaitMS    int    `json:"drain_wait_ms"`
			RequireAdvance bool   `json:"require_advance"`
		}
		// An empty body is a default rollout, not an error.
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			clusterWriteJSON(w, http.StatusBadRequest, "", clusterError{Error: "malformed rollout body: " + err.Error()})
			return
		}
		cfg := RolloutConfig{
			CanarySQL:      req.CanarySQL,
			CanaryK:        req.CanaryK,
			DrainWait:      time.Duration(req.DrainWaitMS) * time.Millisecond,
			RequireAdvance: req.RequireAdvance,
		}
		// The rollout outlives this request: it runs on the background
		// context, not r.Context().
		if err := c.StartRollout(context.Background(), cfg); err != nil {
			clusterWriteJSON(w, http.StatusConflict, "", clusterError{Error: err.Error()})
			return
		}
		clusterWriteJSON(w, http.StatusAccepted, "", c.RolloutStatus())
	default:
		clusterWriteJSON(w, http.StatusMethodNotAllowed, "", clusterError{Error: "GET or POST only"})
	}
}

func (c *Coordinator) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		clusterWriteJSON(w, http.StatusMethodNotAllowed, "", clusterError{Error: "GET only"})
		return
	}
	clusterWriteJSON(w, http.StatusOK, "", struct {
		Shards []ShardStatus `json:"shards"`
	}{Shards: c.Status()})
}
