package cluster

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the replica failed too often; requests are refused
	// until the cool-off elapses.
	BreakerOpen
	// BreakerHalfOpen: the cool-off elapsed; exactly one probe request is
	// let through to decide between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes one replica's circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// open (<= 0 means 5).
	Threshold int
	// Cooloff is how long the breaker stays open before letting a probe
	// through (<= 0 means 5s).
	Cooloff time.Duration

	// now overrides the clock in tests; nil means time.Now.
	now func() time.Time
	// onTransition, when set, observes every state change.
	onTransition func(from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooloff <= 0 {
		c.Cooloff = 5 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Breaker is a per-replica circuit breaker: consecutive failures trip it
// open, a cool-off later it half-opens for a single probe, and the probe's
// outcome decides between closing and re-opening. It keeps a persistently
// failing replica from eating an attempt (and a backoff sleep) on every
// query while still re-checking it periodically.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	held     bool // pinned open by a rollout drain; outcomes are ignored
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may be sent to the replica now. In the
// half-open state only the first caller gets true (the probe); the breaker
// stays half-open until that probe reports Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.held {
		return false
	}
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.now().Sub(b.openedAt) >= b.cfg.Cooloff {
			b.transition(BreakerHalfOpen)
			b.probing = true
			return true
		}
		return false
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a successful request, closing the breaker. While the
// breaker is held by a rollout drain the outcome is discarded: a passing
// background health probe must not flip a draining replica back into
// rotation mid-reload.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.held {
		return
	}
	b.failures = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.transition(BreakerClosed)
	}
}

// Failure records a failed request; enough consecutive failures (or a
// failed half-open probe) trip the breaker open. Held breakers discard
// the outcome (a replica mid-reload is expected to misbehave).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.held {
		return
	}
	b.probing = false
	b.failures++
	switch b.state {
	case BreakerClosed:
		if b.failures >= b.cfg.Threshold {
			b.open()
		}
	case BreakerHalfOpen:
		b.open()
	case BreakerOpen:
		// Late failure from a request launched before the trip.
	}
}

// State returns the breaker's current position (advancing open→half-open
// when the cool-off has elapsed, so status endpoints see the truth). A
// held breaker reports open: no cool-off can half-open it while a rollout
// drain pins it.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.held {
		return BreakerOpen
	}
	if b.state == BreakerOpen && b.cfg.now().Sub(b.openedAt) >= b.cfg.Cooloff {
		return BreakerHalfOpen
	}
	return b.state
}

// Hold pins the breaker shut for a rollout drain: Allow refuses every
// request and Success/Failure are discarded until Release, so neither
// live traffic nor a concurrent background health probe can move a
// draining replica back into rotation. Hold does not disturb the
// underlying state — Release resumes from it.
func (b *Breaker) Hold() {
	b.mu.Lock()
	b.held = true
	b.mu.Unlock()
}

// Release unpins a held breaker; the underlying state resumes.
func (b *Breaker) Release() {
	b.mu.Lock()
	b.held = false
	b.mu.Unlock()
}

// Held reports whether the breaker is pinned by a rollout drain.
func (b *Breaker) Held() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.held
}

// callers hold b.mu for open and transition.
func (b *Breaker) open() {
	b.openedAt = b.cfg.now()
	b.transition(BreakerOpen)
}

func (b *Breaker) transition(to BreakerState) {
	from := b.state
	b.state = to
	if b.cfg.onTransition != nil && from != to {
		b.cfg.onTransition(from, to)
	}
}
