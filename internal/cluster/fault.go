package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"svqact/internal/detect"
)

// ErrReplicaDown is the terminal error a FaultBackend returns while its
// schedule has the replica dead — the in-process stand-in for a killed
// serving process.
var ErrReplicaDown = errors.New("cluster: replica down")

// FaultPlan is a deterministic fault schedule for one replica. Rate-based
// faults are decided by a keyed hash of (Seed, replica, call number) — the
// same plan over the same call sequence always injects the same faults, so
// failover, hedging and breaker behaviour are property-testable under
// -race without real flakiness.
type FaultPlan struct {
	// Seed keys the per-call fault decisions.
	Seed uint64
	// ErrorRate is the probability a query call fails with a transient
	// error; HangRate the probability it blocks until the caller's context
	// expires (exercising hedging and deadlines); DelayRate the
	// probability it sleeps Delay before answering (exercising latency
	// percentiles without breaking correctness).
	ErrorRate, HangRate, DelayRate float64
	Delay                          time.Duration
	// ThrottleRate is the probability a query call answers 429 with
	// ThrottleRetryAfter as its Retry-After hint — the shard telling the
	// coordinator to back off (exercising backoff-hint honoring and the
	// admission gate's backpressure signal).
	ThrottleRate       float64
	ThrottleRetryAfter time.Duration
	// DownFrom kills the replica from the Nth query call onward (1-based;
	// 0 disables): call numbers >= DownFrom fail with ErrReplicaDown. This
	// is the deterministic "kill one replica mid-batch" lever. UpFrom,
	// when > DownFrom, restarts it: calls >= UpFrom serve again.
	DownFrom, UpFrom int
	// ReloadFailFrom fails Reload calls from the Nth reload onward
	// (1-based; 0 disables) with an injected torn-commit error, leaving
	// the inner backend's generation untouched — the replica failing
	// reload closed. ReloadOKFrom, when > ReloadFailFrom, repairs it:
	// reloads >= ReloadOKFrom succeed again.
	ReloadFailFrom, ReloadOKFrom int
}

// FaultBackend wraps a Backend with a deterministic FaultPlan. Call
// numbering counts Query calls only; Healthy shares the down window but
// has its own counter so probes never shift the query fault schedule.
type FaultBackend struct {
	inner Backend
	plan  FaultPlan

	calls   atomic.Int64 // query calls, 1-based after Add
	served  atomic.Int64 // queries that reached the inner backend
	reloads atomic.Int64 // Reload calls, 1-based after Add
}

// NewFaultBackend wraps inner with plan.
func NewFaultBackend(inner Backend, plan FaultPlan) *FaultBackend {
	return &FaultBackend{inner: inner, plan: plan}
}

func (b *FaultBackend) Name() string { return b.inner.Name() }

// Calls returns the number of Query calls observed so far.
func (b *FaultBackend) Calls() int64 { return b.calls.Load() }

// Served returns the number of queries the inner backend actually answered.
func (b *FaultBackend) Served() int64 { return b.served.Load() }

// down reports whether call number n falls inside the dead window.
func (b *FaultBackend) down(n int64) bool {
	if b.plan.DownFrom <= 0 || n < int64(b.plan.DownFrom) {
		return false
	}
	return b.plan.UpFrom <= b.plan.DownFrom || n < int64(b.plan.UpFrom)
}

func (b *FaultBackend) Query(ctx context.Context, req Request) (*Response, error) {
	n := b.calls.Add(1)
	if b.down(n) {
		return nil, &replicaError{Replica: b.Name(), Err: ErrReplicaDown}
	}
	h := detect.Key64(b.plan.Seed, detect.KeyString(b.Name()), uint64(n))
	u := detect.Unit01(h)
	switch {
	case u < b.plan.ErrorRate:
		return nil, &replicaError{Replica: b.Name(), Status: 500,
			Err: fmt.Errorf("injected fault (call %d)", n)}
	case u < b.plan.ErrorRate+b.plan.HangRate:
		<-ctx.Done()
		return nil, &replicaError{Replica: b.Name(), Err: ctx.Err()}
	case u < b.plan.ErrorRate+b.plan.HangRate+b.plan.DelayRate:
		select {
		case <-time.After(b.plan.Delay):
		case <-ctx.Done():
			return nil, &replicaError{Replica: b.Name(), Err: ctx.Err()}
		}
	case u < b.plan.ErrorRate+b.plan.HangRate+b.plan.DelayRate+b.plan.ThrottleRate:
		return nil, &replicaError{Replica: b.Name(), Status: 429,
			RetryAfter: b.plan.ThrottleRetryAfter,
			Err:        fmt.Errorf("injected throttle (call %d)", n)}
	}
	b.served.Add(1)
	return b.inner.Query(ctx, req)
}

// reloadFailed reports whether reload number n falls inside the injected
// torn-commit window.
func (b *FaultBackend) reloadFailed(n int64) bool {
	if b.plan.ReloadFailFrom <= 0 || n < int64(b.plan.ReloadFailFrom) {
		return false
	}
	return b.plan.ReloadOKFrom <= b.plan.ReloadFailFrom || n < int64(b.plan.ReloadOKFrom)
}

// Reload applies the down window and the torn-commit schedule, then
// delegates to the inner backend's Reloader. A failed reload never touches
// the inner backend — the old generation keeps serving, matching the serve
// process's fail-closed contract.
func (b *FaultBackend) Reload(ctx context.Context) (int, error) {
	n := b.reloads.Add(1)
	if b.down(b.calls.Load() + 1) {
		return 0, &replicaError{Replica: b.Name(), Err: ErrReplicaDown}
	}
	if b.reloadFailed(n) {
		return 0, &replicaError{Replica: b.Name(), Status: 409,
			Err: fmt.Errorf("injected reload failure (torn commit, reload %d)", n)}
	}
	rl, ok := b.inner.(Reloader)
	if !ok {
		return 0, &replicaError{Replica: b.Name(), Err: fmt.Errorf("backend %T does not reload", b.inner)}
	}
	return rl.Reload(ctx)
}

// Generation applies the down window, then delegates.
func (b *FaultBackend) Generation(ctx context.Context) (int, error) {
	if b.down(b.calls.Load() + 1) {
		return 0, &replicaError{Replica: b.Name(), Err: ErrReplicaDown}
	}
	rl, ok := b.inner.(Reloader)
	if !ok {
		return 0, &replicaError{Replica: b.Name(), Err: fmt.Errorf("backend %T does not reload", b.inner)}
	}
	return rl.Generation(ctx)
}

func (b *FaultBackend) Healthy(ctx context.Context) error {
	if b.down(b.calls.Load() + 1) {
		return &replicaError{Replica: b.Name(), Err: ErrReplicaDown}
	}
	return b.inner.Healthy(ctx)
}
