package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"svqact/internal/obs"
)

// HTTPBackend answers shard queries from a cmd/serve -repo process over
// its /query endpoint. It maps the server's JSON contract onto Response
// and classifies failures: 4xx statuses become BadRequestError (fatal, no
// failover), everything else — transport errors, 5xx, malformed bodies —
// is transient and retried.
type HTTPBackend struct {
	name   string
	base   string
	client *http.Client
}

// NewHTTPBackend wraps the serve process at baseURL (e.g.
// "http://127.0.0.1:8080"). name defaults to the baseURL host.
func NewHTTPBackend(name, baseURL string, client *http.Client) *HTTPBackend {
	base := strings.TrimRight(baseURL, "/")
	if name == "" {
		name = strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPBackend{name: name, base: base, client: client}
}

func (b *HTTPBackend) Name() string { return b.name }

// httpQueryResponse is the subset of the server's /query body the
// coordinator consumes.
type httpQueryResponse struct {
	Shard      string `json:"-"`
	Generation int    `json:"generation"`
	Candidates int    `json:"candidates"`
	Sequences  []struct {
		Video string  `json:"video"`
		Start int     `json:"start_clip"`
		End   int     `json:"end_clip"`
		Score float64 `json:"score"`
		Lower float64 `json:"lower"`
		Upper float64 `json:"upper"`
		Exact bool    `json:"exact"`
	} `json:"sequences"`
	Truncated     bool               `json:"truncated"`
	ResidualUpper float64            `json:"residual_upper"`
	Trace         *obs.TraceSnapshot `json:"trace"`
	Error         string             `json:"error"`
}

func (b *HTTPBackend) Query(ctx context.Context, req Request) (*Response, error) {
	body, err := json.Marshal(map[string]any{"sql": req.SQL, "k": req.K})
	if err != nil {
		return nil, &replicaError{Replica: b.name, Err: err}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, &replicaError{Replica: b.name, Err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	if req.QueryID != "" {
		hreq.Header.Set("X-Query-ID", req.QueryID)
	}
	if req.ParentSpan != "" {
		hreq.Header.Set("X-SVQ-Parent-Span", req.ParentSpan)
	}
	hresp, err := b.client.Do(hreq)
	if err != nil {
		return nil, &replicaError{Replica: b.name, Err: err}
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		return nil, &replicaError{Replica: b.name, Status: hresp.StatusCode, Err: err}
	}
	var qr httpQueryResponse
	decodeErr := json.Unmarshal(raw, &qr)
	if hresp.StatusCode >= 400 && hresp.StatusCode < 500 && hresp.StatusCode != http.StatusTooManyRequests {
		msg := qr.Error
		if msg == "" {
			msg = fmt.Sprintf("status %d", hresp.StatusCode)
		}
		return nil, &BadRequestError{Msg: fmt.Sprintf("replica %s: %s", b.name, msg)}
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, &replicaError{Replica: b.name, Status: hresp.StatusCode,
			RetryAfter: parseRetryAfter(hresp.Header.Get("Retry-After")),
			Err:        fmt.Errorf("shard returned %q", strings.TrimSpace(firstLine(qr.Error, raw)))}
	}
	if decodeErr != nil {
		return nil, &replicaError{Replica: b.name, Err: fmt.Errorf("malformed shard body: %w", decodeErr)}
	}
	resp := &Response{
		Shard:         headerOr(hresp.Header.Get("X-SVQ-Shard"), b.name),
		Replica:       b.name,
		Generation:    qr.Generation,
		Candidates:    qr.Candidates,
		Truncated:     qr.Truncated,
		ResidualUpper: qr.ResidualUpper,
		Trace:         qr.Trace,
	}
	for _, s := range qr.Sequences {
		resp.Sequences = append(resp.Sequences, RankedSeq{
			Video:     s.Video,
			StartClip: s.Start,
			EndClip:   s.End,
			Score:     s.Score,
			Lower:     s.Lower,
			Upper:     s.Upper,
			Exact:     s.Exact,
		})
	}
	return resp, nil
}

// Healthy probes the serve process's /healthz.
func (b *HTTPBackend) Healthy(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		return &replicaError{Replica: b.name, Err: err}
	}
	hresp, err := b.client.Do(hreq)
	if err != nil {
		return &replicaError{Replica: b.name, Err: err}
	}
	defer hresp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(hresp.Body, 1<<20))
	if hresp.StatusCode != http.StatusOK {
		return &replicaError{Replica: b.name, Status: hresp.StatusCode,
			Err: fmt.Errorf("healthz returned %d", hresp.StatusCode)}
	}
	return nil
}

// repoStatusResponse is the subset of the server's /repo/status and
// /repo/reload bodies the rollout consumes.
type repoStatusResponse struct {
	Generation int    `json:"generation"`
	Error      string `json:"error"`
}

func (b *HTTPBackend) repoCall(ctx context.Context, method, path string) (int, error) {
	hreq, err := http.NewRequestWithContext(ctx, method, b.base+path, nil)
	if err != nil {
		return 0, &replicaError{Replica: b.name, Err: err}
	}
	hresp, err := b.client.Do(hreq)
	if err != nil {
		return 0, &replicaError{Replica: b.name, Err: err}
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
	if err != nil {
		return 0, &replicaError{Replica: b.name, Status: hresp.StatusCode, Err: err}
	}
	var rs repoStatusResponse
	decodeErr := json.Unmarshal(raw, &rs)
	if hresp.StatusCode != http.StatusOK {
		return 0, &replicaError{Replica: b.name, Status: hresp.StatusCode,
			Err: fmt.Errorf("%s %s returned %q", method, path, strings.TrimSpace(firstLine(rs.Error, raw)))}
	}
	if decodeErr != nil {
		return 0, &replicaError{Replica: b.name, Err: fmt.Errorf("malformed %s body: %w", path, decodeErr)}
	}
	return rs.Generation, nil
}

// Reload triggers the serve process's POST /repo/reload. The server fails
// reload closed: a non-200 answer means the old generation kept serving.
func (b *HTTPBackend) Reload(ctx context.Context) (int, error) {
	return b.repoCall(ctx, http.MethodPost, "/repo/reload")
}

// Generation reads the serving generation from GET /repo/status.
func (b *HTTPBackend) Generation(ctx context.Context) (int, error) {
	return b.repoCall(ctx, http.MethodGet, "/repo/status")
}

// parseRetryAfter parses a Retry-After header value: integer seconds, or
// an HTTP date. 0 means absent or unparsable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

func headerOr(v, def string) string {
	if v != "" {
		return v
	}
	return def
}

func firstLine(msg string, raw []byte) string {
	if msg != "" {
		return msg
	}
	s := string(raw)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
