package cluster

import (
	"context"
	"time"

	"svqact/internal/obs"
)

// Admission control in front of the scatter-gather path. The coordinator
// mirrors internal/server's gate — a bounded concurrency semaphore plus a
// short admission queue, shedding with 429 + Retry-After — and adds the
// two cluster-only levers: deadline awareness (a request whose deadline
// cannot survive the queue is shed immediately instead of timing out
// after it was admitted) and per-shard backpressure (a shard answering
// 429/503 raises a pressure signal that makes the gate shed new arrivals
// while the cluster is already saturated, instead of queueing work the
// shards have asked it not to send).

// admissionReasons enumerates the shed reasons, in metric label order.
var admissionReasons = []string{"queue_full", "saturated", "deadline", "backpressure"}

type admissionGate struct {
	sem        chan struct{}
	queueDepth int
	queueWait  time.Duration

	// pressure reports the remaining cluster backpressure window (0 when
	// calm): the longest Retry-After any shard has recently answered.
	pressure func() time.Duration

	waiting  *obs.Gauge
	inflight *obs.Gauge
	admitted *obs.Counter
	rejected map[string]*obs.Counter
	waitHist *obs.Histogram
}

func newAdmissionGate(reg *obs.Registry, maxConcurrent, queueDepth int, queueWait time.Duration, pressure func() time.Duration) *admissionGate {
	g := &admissionGate{
		sem:        make(chan struct{}, maxConcurrent),
		queueDepth: queueDepth,
		queueWait:  queueWait,
		pressure:   pressure,
		waiting: reg.Gauge("svqact_cluster_admission_waiting",
			"Scatter-gathers queued at the coordinator's admission gate."),
		inflight: reg.Gauge("svqact_cluster_admission_inflight",
			"Scatter-gathers executing concurrently."),
		admitted: reg.Counter("svqact_cluster_admission_admitted_total",
			"Scatter-gathers admitted past the gate."),
		rejected: map[string]*obs.Counter{},
		waitHist: reg.Histogram("svqact_cluster_admission_wait_seconds",
			"Time admitted scatter-gathers spent queued for a slot.", latencyBounds),
	}
	for _, reason := range admissionReasons {
		g.rejected[reason] = reg.Counter("svqact_cluster_admission_rejected_total",
			"Scatter-gathers shed by the admission gate, by reason.", obs.L("reason", reason))
	}
	return g
}

func (g *admissionGate) reject(reason string, retryAfter time.Duration) *OverloadError {
	g.rejected[reason].Inc()
	if retryAfter <= 0 {
		retryAfter = g.queueWait
	}
	return &OverloadError{Reason: reason, RetryAfter: retryAfter}
}

// acquire admits one scatter-gather or returns a typed *OverloadError.
// The returned release must be called exactly once after the work ends.
func (g *admissionGate) acquire(ctx context.Context) (release func(), err error) {
	admit := func() func() {
		g.admitted.Inc()
		g.inflight.Add(1)
		return func() {
			g.inflight.Add(-1)
			<-g.sem
		}
	}
	select {
	case g.sem <- struct{}{}:
		return admit(), nil
	default:
	}

	// No free slot. While a shard is pushing back, queuing more work on
	// its behalf only deepens the overload — shed immediately and tell
	// the client when the pressure window ends.
	if p := g.pressure(); p > 0 {
		return nil, g.reject("backpressure", p)
	}
	if g.queueDepth <= 0 || g.waiting.Add(1) > int64(g.queueDepth) {
		if g.queueDepth > 0 {
			g.waiting.Add(-1)
		}
		return nil, g.reject("queue_full", 0)
	}
	defer g.waiting.Add(-1)

	// Deadline-aware wait: never queue longer than the request could
	// still use. A request that would reach its deadline inside the
	// queue is shed as "deadline" rather than burning a queue slot.
	wait, reason := g.queueWait, "saturated"
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			return nil, g.reject("deadline", 0)
		}
		if remaining < wait {
			wait, reason = remaining, "deadline"
		}
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	start := time.Now()
	select {
	case g.sem <- struct{}{}:
		g.waitHist.Observe(time.Since(start).Seconds())
		return admit(), nil
	case <-t.C:
		return nil, g.reject(reason, 0)
	case <-ctx.Done():
		return nil, g.reject("deadline", 0)
	}
}

// AdmissionHealth is the admission block of the coordinator's /healthz
// body, mirroring internal/server's counters.
type AdmissionHealth struct {
	Capacity   int   `json:"capacity"`
	QueueDepth int   `json:"queue_depth"`
	Inflight   int64 `json:"inflight"`
	Waiting    int64 `json:"waiting"`
	Admitted   int64 `json:"admitted"`
	Rejected   int64 `json:"rejected"`
	// BackpressureMS is the remaining shard backpressure window, 0 when
	// no shard has recently answered 429/503.
	BackpressureMS int64 `json:"backpressure_ms,omitempty"`
}

func (g *admissionGate) health() AdmissionHealth {
	h := AdmissionHealth{
		Capacity:   cap(g.sem),
		QueueDepth: g.queueDepth,
		Inflight:   g.inflight.Value(),
		Waiting:    g.waiting.Value(),
		Admitted:   g.admitted.Value(),
	}
	for _, c := range g.rejected {
		h.Rejected += c.Value()
	}
	if p := g.pressure(); p > 0 {
		h.BackpressureMS = p.Milliseconds()
	}
	return h
}
