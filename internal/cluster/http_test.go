package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"svqact/internal/rank"
	"svqact/internal/server"
)

// buildShardRepos splits the test world into n on-disk shard repositories
// and returns their directories plus the monolith ground truth.
func buildShardRepos(t *testing.T, n int) (dirs []string, mono *rank.Index) {
	t.Helper()
	srcDir := t.TempDir()
	src, err := rank.OpenRepository(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range testMembers {
		if err := src.Add(memberIndex(t, m, int64(100+i*17))); err != nil {
			t.Fatal(err)
		}
	}
	mono, err = src.Merged()
	if err != nil {
		t.Fatal(err)
	}
	src.Close()
	base := t.TempDir()
	for i := 0; i < n; i++ {
		dirs = append(dirs, filepath.Join(base, fmt.Sprintf("shard%d", i)))
	}
	if err := SplitRepository(srcDir, dirs); err != nil {
		t.Fatal(err)
	}
	return dirs, mono
}

// shardServer boots a repo-backed single-process server for one shard.
func shardServer(t *testing.T, repoDir, shardName string) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{Scale: 0.05, Seed: 1, RepoDir: repoDir, ShardName: shardName})
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// The full serving stack: coordinator → HTTPBackend → cmd/serve-style
// repo-backed processes, with replica kill and failover across real HTTP.
func TestHTTPBackendEndToEnd(t *testing.T) {
	dirs, mono := buildShardRepos(t, 2)
	// Shard s1 runs two replica processes over the same shard repository.
	s0r0 := shardServer(t, dirs[0], "s0")
	s1r0 := shardServer(t, dirs[1], "s1")
	s1r1 := shardServer(t, dirs[1], "s1")

	specs := []ShardSpec{
		{Name: "s0", Replicas: []Backend{NewHTTPBackend("s0-r0", s0r0.URL, nil)}},
		{Name: "s1", Replicas: []Backend{
			NewHTTPBackend("s1-r0", s1r0.URL, nil),
			NewHTTPBackend("s1-r1", s1r1.URL, nil)}},
	}
	c, err := New(specs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := monolithTopK(t, mono, rankedSQL)

	// Healthy cluster: exact monolith answer, all shards ok.
	res, err := c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSeqs(t, res.Sequences, want)
	if len(res.Partition.OK) != 2 {
		t.Fatalf("partition = %+v", res.Partition)
	}
	for sh, gen := range res.Generations {
		if gen < 1 {
			t.Errorf("shard %s generation = %d, want >= 1", sh, gen)
		}
	}

	// Health probes pass over real HTTP.
	c.ProbeAll(context.Background())
	for _, sh := range c.Status() {
		for _, rep := range sh.Replicas {
			if rep.LastError != "" {
				t.Fatalf("replica %s probe failed: %s", rep.Name, rep.LastError)
			}
		}
	}

	// Kill s1's primary process: the query fails over to the second
	// replica and degrades without losing correctness.
	s1r0.Close()
	res, err = c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatalf("failover across HTTP should succeed: %v", err)
	}
	assertSameSeqs(t, res.Sequences, want)
	if fmt.Sprint(res.Partition.Degraded) != "[s1]" {
		t.Fatalf("partition after kill = %+v, want s1 degraded", res.Partition)
	}

	// Kill the last s1 replica: whole-shard loss, graceful degradation
	// with the surviving shard's exact answer.
	s1r1.Close()
	res, err = c.TopK(context.Background(), rankedSQL)
	var deg *DegradedError
	if !errors.As(err, &deg) || fmt.Sprint(deg.Failed) != "[s1]" {
		t.Fatalf("err = %v, want DegradedError naming s1", err)
	}
	s0ix, err := rank.OpenRepository(dirs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer s0ix.Close()
	s0merged, err := s0ix.Merged()
	if err != nil {
		t.Fatal(err)
	}
	assertSameSeqs(t, res.Sequences, monolithTopK(t, s0merged, rankedSQL))
}

// HTTPBackend classifies shard rejections: invalid statements are fatal
// BadRequestError (no failover), transport errors are transient.
func TestHTTPBackendErrorClassification(t *testing.T) {
	dirs, _ := buildShardRepos(t, 1)
	ts := shardServer(t, dirs[0], "s0")
	b := NewHTTPBackend("s0-r0", ts.URL, nil)

	var bad *BadRequestError
	if _, err := b.Query(context.Background(), Request{SQL: "SELECT nonsense"}); !errors.As(err, &bad) {
		t.Fatalf("parse rejection = %v, want BadRequestError", err)
	}
	var rerr *replicaError
	ts.Close()
	if _, err := b.Query(context.Background(), Request{SQL: rankedSQL}); !errors.As(err, &rerr) {
		t.Fatalf("dead process = %v, want transient replicaError", err)
	}
	if err := b.Healthy(context.Background()); err == nil {
		t.Fatal("health probe of dead process should fail")
	}
}

// The coordinator's K override reaches the shard over HTTP: a deeper pull
// returns more sequences than the statement's LIMIT.
func TestHTTPBackendKOverride(t *testing.T) {
	dirs, _ := buildShardRepos(t, 1)
	ts := shardServer(t, dirs[0], "s0")
	b := NewHTTPBackend("s0-r0", ts.URL, nil)

	shallow, err := b.Query(context.Background(), Request{SQL: rankedSQL})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := b.Query(context.Background(), Request{SQL: rankedSQL, K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(shallow.Sequences) != 3 || len(deep.Sequences) <= len(shallow.Sequences) {
		t.Fatalf("K override ignored: LIMIT 3 gave %d, K=8 gave %d",
			len(shallow.Sequences), len(deep.Sequences))
	}
	if shallow.Shard != "s0" {
		t.Fatalf("shard attribution = %q, want s0 (X-SVQ-Shard)", shallow.Shard)
	}
}
