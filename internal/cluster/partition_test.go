package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"svqact/internal/rank"
)

func TestShardOfStableAndTotal(t *testing.T) {
	for _, m := range testMembers {
		i := ShardOf(m, 3)
		if i < 0 || i >= 3 {
			t.Fatalf("ShardOf(%q, 3) = %d out of range", m, i)
		}
		if j := ShardOf(m, 3); j != i {
			t.Fatalf("ShardOf(%q) unstable: %d then %d", m, i, j)
		}
	}
	if ShardOf("anything", 1) != 0 || ShardOf("anything", 0) != 0 {
		t.Fatal("degenerate shard counts must map to shard 0")
	}
}

func TestPartitionMembersDisjointCover(t *testing.T) {
	groups := PartitionMembers(testMembers, 3)
	seen := map[string]int{}
	for i, g := range groups {
		for _, m := range g {
			if prev, dup := seen[m]; dup {
				t.Fatalf("member %q in shards %d and %d", m, prev, i)
			}
			seen[m] = i
		}
	}
	if len(seen) != len(testMembers) {
		t.Fatalf("partition covers %d of %d members", len(seen), len(testMembers))
	}
}

// SplitRepository splits an on-disk repository into shard repositories
// that (a) are valid repositories, (b) disjointly cover the members, and
// (c) answer via the coordinator exactly what the source answers directly.
func TestSplitRepositoryRoundTrip(t *testing.T) {
	srcDir := t.TempDir()
	src, err := rank.OpenRepository(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range testMembers {
		if err := src.Add(memberIndex(t, m, int64(100+i*17))); err != nil {
			t.Fatal(err)
		}
	}
	mono, err := src.Merged()
	if err != nil {
		t.Fatal(err)
	}
	want := monolithTopK(t, mono, rankedSQL)
	src.Close()

	outBase := t.TempDir()
	outDirs := []string{filepath.Join(outBase, "shard0"), filepath.Join(outBase, "shard1")}
	if err := SplitRepository(srcDir, outDirs); err != nil {
		t.Fatal(err)
	}

	var union []string
	var specs []ShardSpec
	for i, dir := range outDirs {
		repo, err := rank.OpenRepository(dir)
		if err != nil {
			t.Fatalf("shard %d is not a valid repository: %v", i, err)
		}
		defer repo.Close()
		members := repo.Videos()
		if len(members) == 0 {
			t.Fatalf("shard %d is empty", i)
		}
		for _, m := range members {
			if ShardOf(m, len(outDirs)) != i {
				t.Fatalf("member %q landed on shard %d, ShardOf says %d", m, i, ShardOf(m, len(outDirs)))
			}
		}
		union = append(union, members...)
		merged, err := repo.Merged()
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("s%d", i)
		specs = append(specs, ShardSpec{Name: name,
			Replicas: []Backend{NewLocalBackend(name+"-r0", repo.MaxGeneration(), merged)}})
	}
	sort.Strings(union)
	wantMembers := append([]string(nil), testMembers...)
	sort.Strings(wantMembers)
	if fmt.Sprint(union) != fmt.Sprint(wantMembers) {
		t.Fatalf("shard union = %v, want %v", union, wantMembers)
	}

	c, err := New(specs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSeqs(t, res.Sequences, want)
}

func TestPartitionMergeKeepsWorst(t *testing.T) {
	var p Partition
	p.Merge(Partition{OK: []string{"a", "b", "c"}})
	p.Merge(Partition{OK: []string{"a"}, Degraded: []string{"b"}, Failed: []string{"c"}})
	p.Merge(Partition{OK: []string{"b", "c"}}) // never downgrades
	sort.Strings(p.OK)
	if fmt.Sprint(p.OK) != "[a]" || fmt.Sprint(p.Degraded) != "[b]" || fmt.Sprint(p.Failed) != "[c]" {
		t.Fatalf("merged partition = %+v", p)
	}
}
