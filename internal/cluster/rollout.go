package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Rolling generation swap: the coordinator walks shard replica sets one
// replica at a time through drain → reload → verify → advance. Draining
// pins the replica's breaker shut (Hold), so live traffic fails over to
// its siblings and no concurrent health probe can flip it back into
// rotation mid-reload; reload triggers the replica's fail-closed
// generation swap; verify requires a passing health probe, a served
// generation that did not move backwards, and a canary query answered by
// the new generation. Any failed step halts the whole rollout with
// per-replica attribution — the failed replica's breaker is released and
// its old generation keeps serving (shards fail reload closed), so a
// halted rollout degrades to "mixed generations flagged by the
// consistency guard", never to wrong answers. Re-running after repair
// resumes: replicas already on the target generation reload as no-ops.

// ErrRolloutActive rejects a second rollout while one is running.
var ErrRolloutActive = errors.New("cluster: a rollout is already running")

// RolloutConfig tunes one rolling generation swap.
type RolloutConfig struct {
	// CanarySQL is the ranked statement used to verify each reloaded
	// replica actually answers from the new generation; "" skips the
	// canary (health probe + generation check only). CanaryK defaults 1.
	CanarySQL string `json:"canary_sql,omitempty"`
	CanaryK   int    `json:"canary_k,omitempty"`
	// DrainWait is how long to sit between pinning the breaker and
	// triggering the reload, letting in-flight requests land; <= 0 means
	// no wait (tests) — the serve process's reload path quiesces its own
	// readers regardless.
	DrainWait time.Duration `json:"-"`
	// StepTimeout bounds each reload/verify call; <= 0 means the
	// coordinator's ShardTimeout.
	StepTimeout time.Duration `json:"-"`
	// RequireAdvance fails a replica whose reload does not increase the
	// served generation. Default false: re-running a halted rollout walks
	// already-swapped replicas as no-ops.
	RequireAdvance bool `json:"require_advance,omitempty"`
}

// ReplicaRollout is one replica's progress through the state machine.
type ReplicaRollout struct {
	Replica string `json:"replica"`
	// State: pending → draining → reloading → verifying → done | failed.
	State          string `json:"state"`
	FromGeneration int    `json:"from_generation,omitempty"`
	ToGeneration   int    `json:"to_generation,omitempty"`
	Error          string `json:"error,omitempty"`
}

// ShardRollout is one shard's progress.
type ShardRollout struct {
	Shard string `json:"shard"`
	// State: pending → rolling → done | failed.
	State    string           `json:"state"`
	Replicas []ReplicaRollout `json:"replicas"`
}

// RolloutStatus is the whole rollout's progress, served on GET /rollout.
type RolloutStatus struct {
	// State: idle (never started), running, done, failed.
	State      string         `json:"state"`
	StartedAt  string         `json:"started_at,omitempty"`
	FinishedAt string         `json:"finished_at,omitempty"`
	Error      string         `json:"error,omitempty"`
	Shards     []ShardRollout `json:"shards,omitempty"`
}

func (s RolloutStatus) clone() RolloutStatus {
	out := s
	out.Shards = make([]ShardRollout, len(s.Shards))
	for i, sh := range s.Shards {
		out.Shards[i] = sh
		out.Shards[i].Replicas = append([]ReplicaRollout(nil), sh.Replicas...)
	}
	return out
}

// RolloutStatus snapshots the current (or last) rollout's progress.
func (c *Coordinator) RolloutStatus() RolloutStatus {
	c.rolloutMu.Lock()
	defer c.rolloutMu.Unlock()
	if c.rollout.State == "" {
		return RolloutStatus{State: "idle"}
	}
	return c.rollout.clone()
}

// StartRollout begins a rolling generation swap in the background,
// returning ErrRolloutActive if one is already running. Progress is
// observable via RolloutStatus / GET /rollout.
func (c *Coordinator) StartRollout(ctx context.Context, cfg RolloutConfig) error {
	c.rolloutMu.Lock()
	if c.rolloutActive {
		c.rolloutMu.Unlock()
		return ErrRolloutActive
	}
	c.rolloutActive = true
	c.beginRolloutLocked()
	c.rolloutMu.Unlock()
	go c.runRollout(ctx, cfg)
	return nil
}

// RunRollout runs a rolling generation swap synchronously and returns its
// terminal error (nil on completion). Tests and embedded callers use it;
// the HTTP layer uses StartRollout.
func (c *Coordinator) RunRollout(ctx context.Context, cfg RolloutConfig) error {
	c.rolloutMu.Lock()
	if c.rolloutActive {
		c.rolloutMu.Unlock()
		return ErrRolloutActive
	}
	c.rolloutActive = true
	c.beginRolloutLocked()
	c.rolloutMu.Unlock()
	return c.runRollout(ctx, cfg)
}

// beginRolloutLocked resets the status tree; caller holds rolloutMu.
func (c *Coordinator) beginRolloutLocked() {
	st := RolloutStatus{
		State:     "running",
		StartedAt: time.Now().UTC().Format(time.RFC3339Nano),
	}
	for _, sh := range c.shards {
		sr := ShardRollout{Shard: sh.name, State: "pending"}
		for _, r := range sh.replicas {
			sr.Replicas = append(sr.Replicas, ReplicaRollout{Replica: r.backend.Name(), State: "pending"})
		}
		st.Shards = append(st.Shards, sr)
	}
	c.rollout = st
	c.mRolloutGauge.Set(1)
}

// setRollout mutates the status tree under the lock.
func (c *Coordinator) setRollout(mut func(st *RolloutStatus)) {
	c.rolloutMu.Lock()
	mut(&c.rollout)
	c.rolloutMu.Unlock()
}

func (c *Coordinator) runRollout(ctx context.Context, cfg RolloutConfig) (err error) {
	if cfg.CanaryK <= 0 {
		cfg.CanaryK = 1
	}
	if cfg.StepTimeout <= 0 {
		cfg.StepTimeout = c.cfg.ShardTimeout
	}
	defer func() {
		c.rolloutMu.Lock()
		c.rolloutActive = false
		c.rollout.FinishedAt = time.Now().UTC().Format(time.RFC3339Nano)
		if err != nil {
			c.rollout.State = "failed"
			c.rollout.Error = err.Error()
			c.mRollouts["failed"].Inc()
		} else {
			c.rollout.State = "done"
			c.mRollouts["completed"].Inc()
		}
		c.mRolloutGauge.Set(0)
		c.rolloutMu.Unlock()
		if err != nil {
			c.log.Warn("rollout halted", "error", err.Error())
		} else {
			c.log.Info("rollout completed")
		}
	}()

	for si, sh := range c.shards {
		c.setRollout(func(st *RolloutStatus) { st.Shards[si].State = "rolling" })
		gens := make([]int, len(sh.replicas))
		for ri, rep := range sh.replicas {
			gen, rerr := c.rollReplica(ctx, cfg, si, ri, sh, rep)
			if rerr != nil {
				c.setRollout(func(st *RolloutStatus) { st.Shards[si].State = "failed" })
				return fmt.Errorf("shard %s replica %s: %w", sh.name, rep.backend.Name(), rerr)
			}
			gens[ri] = gen
		}
		// Shard-level consistency: every replica must land on the same
		// generation, or queries keep tripping the mixed-generation guard
		// depending on which replica answers.
		for ri := 1; ri < len(gens); ri++ {
			if gens[ri] > 0 && gens[0] > 0 && gens[ri] != gens[0] {
				c.setRollout(func(st *RolloutStatus) { st.Shards[si].State = "failed" })
				return fmt.Errorf("shard %s: replicas diverged after rollout (generation %d vs %d)",
					sh.name, gens[0], gens[ri])
			}
		}
		c.setRollout(func(st *RolloutStatus) { st.Shards[si].State = "done" })
	}
	return nil
}

// rollReplica walks one replica through drain → reload → verify → advance
// and returns the generation it serves afterwards. On any failure the
// breaker hold is released before returning, so the replica's old
// generation goes straight back into rotation.
func (c *Coordinator) rollReplica(ctx context.Context, cfg RolloutConfig, si, ri int, sh *shard, rep *replica) (gen int, err error) {
	setReplica := func(mut func(rr *ReplicaRollout)) {
		c.setRollout(func(st *RolloutStatus) { mut(&st.Shards[si].Replicas[ri]) })
	}
	defer func() {
		if err != nil {
			setReplica(func(rr *ReplicaRollout) {
				rr.State = "failed"
				rr.Error = err.Error()
			})
		}
	}()

	rl, ok := rep.backend.(Reloader)
	if !ok {
		return 0, fmt.Errorf("backend %T does not support rollout", rep.backend)
	}
	call := func(f func(context.Context) (int, error)) (int, error) {
		sctx, cancel := context.WithTimeout(ctx, cfg.StepTimeout)
		defer cancel()
		return f(sctx)
	}

	// Drain: pin the breaker shut. Live traffic fails over to siblings
	// and concurrent health probes are discarded until Release.
	setReplica(func(rr *ReplicaRollout) { rr.State = "draining" })
	rep.breaker.Hold()
	defer rep.breaker.Release()
	if cfg.DrainWait > 0 {
		select {
		case <-time.After(cfg.DrainWait):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	from, err := call(rl.Generation)
	if err != nil {
		return 0, fmt.Errorf("pre-reload generation: %w", err)
	}
	setReplica(func(rr *ReplicaRollout) { rr.FromGeneration = from })

	// Reload: the replica swaps fail-closed — on error the old
	// generation is still serving and the rollout halts here.
	setReplica(func(rr *ReplicaRollout) { rr.State = "reloading" })
	to, err := call(rl.Reload)
	if err != nil {
		return 0, fmt.Errorf("reload: %w", err)
	}
	setReplica(func(rr *ReplicaRollout) { rr.ToGeneration = to })

	// Verify: health probe, generation sanity, then a canary query that
	// must be answered by the generation the reload reported.
	setReplica(func(rr *ReplicaRollout) { rr.State = "verifying" })
	if _, err := call(func(sctx context.Context) (int, error) {
		return 0, rep.backend.Healthy(sctx)
	}); err != nil {
		return 0, fmt.Errorf("post-reload health probe: %w", err)
	}
	if to < from {
		return 0, fmt.Errorf("generation moved backwards after reload (%d -> %d)", from, to)
	}
	if cfg.RequireAdvance && to <= from {
		return 0, fmt.Errorf("reload did not advance the generation (still %d)", to)
	}
	if cfg.CanarySQL != "" {
		resp, cerr := func() (*Response, error) {
			sctx, cancel := context.WithTimeout(ctx, cfg.StepTimeout)
			defer cancel()
			return rep.backend.Query(sctx, Request{SQL: cfg.CanarySQL, K: cfg.CanaryK, QueryID: "rollout-canary"})
		}()
		if cerr != nil {
			return 0, fmt.Errorf("canary query: %w", cerr)
		}
		if resp.Generation > 0 && to > 0 && resp.Generation != to {
			return 0, fmt.Errorf("canary answered from generation %d, want %d", resp.Generation, to)
		}
	}

	// Advance: unpin and reset the breaker so the verified replica goes
	// straight back into rotation without waiting out an old cool-off.
	rep.breaker.Release()
	rep.breaker.Success()
	setReplica(func(rr *ReplicaRollout) { rr.State = "done" })
	return to, nil
}
