package cluster

import (
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	var transitions []string
	b := NewBreaker(BreakerConfig{
		Threshold: 2, Cooloff: 10 * time.Second, now: clk.Now,
		onTransition: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+">"+to.String())
		},
	})

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("fresh breaker must be closed and allowing")
	}
	b.Failure()
	if !b.Allow() {
		t.Fatal("one failure below threshold must not trip")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker must refuse before cool-off")
	}

	// Success resets the consecutive-failure count.
	clk.Advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("cool-off elapsed: half-open must admit one probe")
	}
	if b.Allow() {
		t.Fatal("half-open must admit only one probe at a time")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe must re-open, got %v", b.State())
	}

	clk.Advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("second cool-off: probe must be admitted")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("passing probe must close the breaker")
	}

	// A single failure after recovery stays closed (count was reset).
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("failure count must reset on close")
	}

	want := "closed>open,open>half_open,half_open>open,open>half_open,half_open>closed"
	got := ""
	for i, tr := range transitions {
		if i > 0 {
			got += ","
		}
		got += tr
	}
	if got != want {
		t.Fatalf("transitions = %s, want %s", got, want)
	}
}
