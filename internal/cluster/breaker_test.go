package cluster

import (
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	var transitions []string
	b := NewBreaker(BreakerConfig{
		Threshold: 2, Cooloff: 10 * time.Second, now: clk.Now,
		onTransition: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+">"+to.String())
		},
	})

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("fresh breaker must be closed and allowing")
	}
	b.Failure()
	if !b.Allow() {
		t.Fatal("one failure below threshold must not trip")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker must refuse before cool-off")
	}

	// Success resets the consecutive-failure count.
	clk.Advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("cool-off elapsed: half-open must admit one probe")
	}
	if b.Allow() {
		t.Fatal("half-open must admit only one probe at a time")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe must re-open, got %v", b.State())
	}

	clk.Advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("second cool-off: probe must be admitted")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("passing probe must close the breaker")
	}

	// A single failure after recovery stays closed (count was reset).
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("failure count must reset on close")
	}

	want := "closed>open,open>half_open,half_open>open,open>half_open,half_open>closed"
	got := ""
	for i, tr := range transitions {
		if i > 0 {
			got += ","
		}
		got += tr
	}
	if got != want {
		t.Fatalf("transitions = %s, want %s", got, want)
	}
}

func TestBreakerHoldPinsOpen(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooloff: 10 * time.Second, now: clk.Now})

	// Holding a closed breaker refuses traffic without disturbing the
	// underlying state.
	b.Hold()
	if b.Allow() {
		t.Fatal("held breaker must refuse")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("held breaker state = %v, want open", b.State())
	}
	if !b.Held() {
		t.Fatal("Held() must report the pin")
	}
	// Outcomes recorded while held are discarded: neither a passing health
	// probe nor a burst of failures moves the breaker.
	b.Success()
	if b.Allow() {
		t.Fatal("discarded success re-opened a held breaker to traffic")
	}
	b.Failure()
	b.Failure()
	b.Failure()
	b.Release()
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatalf("release must resume the underlying closed state, got %v", b.State())
	}

	// Holding a tripped breaker outlasts the cool-off: no half-open probe
	// can slip through mid-drain.
	b.Failure()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	b.Hold()
	clk.Advance(time.Hour)
	if b.Allow() {
		t.Fatal("held breaker admitted a probe despite the elapsed cool-off")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("held breaker state after cool-off = %v, want open", b.State())
	}
	b.Release()
	if !b.Allow() {
		t.Fatal("released breaker past its cool-off must admit the half-open probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after passing probe = %v, want closed", b.State())
	}
}
