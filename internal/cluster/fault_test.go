package cluster

import (
	"context"
	"errors"
	"testing"
	"time"
)

// okStub answers every query immediately.
func okStub(name string) Backend {
	return &stubBackend{name: name, fn: func(context.Context, Request) (*Response, error) {
		return &Response{Shard: name, Replica: name}, nil
	}}
}

// Identical fault plans over identical call sequences inject identical
// faults — the property that makes every failover test replayable.
func TestFaultScheduleDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 42, ErrorRate: 0.4}
	pattern := func() []bool {
		b := NewFaultBackend(okStub("rep"), plan)
		var p []bool
		for i := 0; i < 64; i++ {
			_, err := b.Query(context.Background(), Request{})
			p = append(p, err == nil)
		}
		return p
	}
	a, b := pattern(), pattern()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: schedules diverge", i)
		}
		if !a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("ErrorRate 0.4 injected %d/%d failures — schedule degenerate", fails, len(a))
	}
}

func TestFaultDownWindow(t *testing.T) {
	b := NewFaultBackend(okStub("rep"), FaultPlan{DownFrom: 3, UpFrom: 5})
	var got []bool
	for i := 0; i < 6; i++ {
		_, err := b.Query(context.Background(), Request{})
		if err != nil && !errors.Is(err, ErrReplicaDown) {
			t.Fatalf("call %d: err = %v, want ErrReplicaDown", i+1, err)
		}
		got = append(got, err == nil)
	}
	want := []bool{true, true, false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d up = %v, want %v (window [3,5))", i+1, got[i], want[i])
		}
	}
	if b.Served() != 4 {
		t.Fatalf("served = %d, want 4", b.Served())
	}
	// Health shares the window (next call is 7 — up) but never consumes
	// query call numbers.
	if err := b.Healthy(context.Background()); err != nil {
		t.Fatalf("healthy after recovery: %v", err)
	}
	if b.Calls() != 6 {
		t.Fatalf("health probe consumed a query call: calls = %d", b.Calls())
	}
}

func TestFaultDownForever(t *testing.T) {
	b := NewFaultBackend(okStub("rep"), FaultPlan{DownFrom: 1})
	for i := 0; i < 3; i++ {
		if _, err := b.Query(context.Background(), Request{}); !errors.Is(err, ErrReplicaDown) {
			t.Fatalf("call %d: err = %v, want ErrReplicaDown", i+1, err)
		}
	}
	if err := b.Healthy(context.Background()); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("health of dead replica = %v, want ErrReplicaDown", err)
	}
}

func TestFaultHangRespectsContext(t *testing.T) {
	b := NewFaultBackend(okStub("rep"), FaultPlan{Seed: 1, HangRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := b.Query(ctx, Request{})
	if err == nil {
		t.Fatal("hang fault returned success")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang ignored context")
	}
}
