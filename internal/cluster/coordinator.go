package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"svqact/internal/detect"
	"svqact/internal/obs"
	"svqact/internal/rank"
	"svqact/internal/sqlq"
)

// ShardSpec declares one shard: a name plus its ordered replica set (the
// first replica is the primary; the rest are failover targets).
type ShardSpec struct {
	Name     string
	Replicas []Backend
}

// Config tunes the coordinator's robustness machinery.
type Config struct {
	// QueryTimeout bounds one whole scatter-gather (all rounds); <= 0
	// means 30s. ShardTimeout bounds one shard's attempt set within a
	// round; <= 0 means QueryTimeout.
	QueryTimeout time.Duration
	ShardTimeout time.Duration

	// MaxConcurrent bounds concurrently executing scatter-gathers (<= 0
	// means 16); QueueDepth bounds the admission queue behind it (< 0
	// disables queueing entirely, 0 means 2*MaxConcurrent) and QueueWait
	// bounds how long one request may queue (<= 0 means 2s). Requests
	// beyond queue capacity — or whose deadline cannot survive the
	// queue — are shed with a typed *OverloadError (HTTP 429 +
	// Retry-After), before any shard is touched.
	MaxConcurrent int
	QueueDepth    int
	QueueWait     time.Duration

	// AttemptsPerReplica bounds retries: a shard's attempt budget per
	// round is AttemptsPerReplica * len(replicas); <= 0 means 2.
	AttemptsPerReplica int

	// BaseBackoff/MaxBackoff shape the exponential backoff between
	// attempts (defaults 20ms / 1s). Jitter is deterministic: a keyed
	// hash of (Seed, query, shard, attempt) scales each delay by
	// [0.5, 1.5), so failover schedules replay identically in tests.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Seed        uint64

	// HedgeAfter enables hedged requests: when a shard's attempt is
	// still unanswered after this delay (or the shard's observed
	// HedgeQuantile latency, whichever is larger once enough samples
	// exist), a second replica is raced and the first answer wins.
	// 0 disables hedging. HedgeQuantile defaults to 0.95.
	HedgeAfter    time.Duration
	HedgeQuantile float64

	// Breaker configures every replica's circuit breaker.
	Breaker BreakerConfig

	// MaxRefineRounds bounds the distributed-threshold refinement loop
	// (re-querying truncated shards with a doubled k); <= 0 means 4.
	MaxRefineRounds int

	// Logger defaults to a discard logger; Registry to a private one.
	Logger   *slog.Logger
	Registry *obs.Registry

	// Traces is the retained trace store behind /debug/traces; nil gets a
	// default-sized one.
	Traces *obs.TraceStore
}

func (c Config) withDefaults() Config {
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = c.QueryTimeout
	}
	if c.AttemptsPerReplica <= 0 {
		c.AttemptsPerReplica = 2
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 16
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 20 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.MaxRefineRounds <= 0 {
		c.MaxRefineRounds = 4
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Traces == nil {
		c.Traces = obs.NewTraceStore(obs.TraceStoreConfig{})
	}
	return c
}

// replica pairs a backend with its breaker and last health-probe state.
type replica struct {
	backend Backend
	breaker *Breaker

	mu        sync.Mutex
	lastProbe time.Time
	lastErr   string
}

// shard is one shard's runtime state.
type shard struct {
	name     string
	replicas []*replica
	// latency records successful attempt latencies; its upper quantile
	// drives the adaptive hedge delay.
	latency *obs.Histogram

	requests  *obs.Counter
	errs      *obs.Counter
	retries   *obs.Counter
	failovers *obs.Counter
	hedges    *obs.Counter
	hedgeWins *obs.Counter

	// pressureUntil (unix nanos) is the shard's backpressure signal: a
	// replica answering 429/503 raises it by the Retry-After hint, and
	// until it passes the admission gate sheds new arrivals whenever no
	// slot is free instead of queueing work the shard asked not to get.
	pressureUntil atomic.Int64
	backpressure  *obs.Counter
}

// raisePressure extends the shard's backpressure window to now+d if that
// is later than the current window.
func (sh *shard) raisePressure(d time.Duration) {
	sh.backpressure.Inc()
	until := time.Now().Add(d).UnixNano()
	for {
		cur := sh.pressureUntil.Load()
		if cur >= until || sh.pressureUntil.CompareAndSwap(cur, until) {
			return
		}
	}
}

// Coordinator fans ranked queries out over shards and merges the top-k
// answers with RVAQ's bounds as the distributed threshold. See the package
// comment for the robustness contract.
type Coordinator struct {
	cfg    Config
	shards []*shard
	byName map[string]*shard
	log    *slog.Logger
	traces *obs.TraceStore

	admission *admissionGate

	// rollout state: at most one rolling generation swap runs at a time.
	rolloutMu     sync.Mutex
	rolloutActive bool
	rollout       RolloutStatus

	mQueries      map[string]*obs.Counter // outcome -> counter
	mPruned       *obs.Counter
	mRefines      *obs.Counter
	mProbes       map[string]*obs.Counter // outcome -> counter
	mBreakerOpen  *obs.Counter
	mMixedGen     *obs.Counter
	mRollouts     map[string]*obs.Counter // outcome -> counter
	mRolloutGauge *obs.Gauge
	scatterHist   *obs.Histogram
}

var latencyBounds = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// New builds a coordinator over the given shards.
func New(shards []ShardSpec, cfg Config) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: no shards")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		byName:   map[string]*shard{},
		log:      cfg.Logger,
		traces:   cfg.Traces,
		mQueries: map[string]*obs.Counter{},
		mProbes:  map[string]*obs.Counter{},
	}
	reg := cfg.Registry
	c.traces.Register(reg)
	for _, o := range []string{"ok", "degraded", "failed"} {
		c.mQueries[o] = reg.Counter("svqact_cluster_queries_total",
			"Scatter-gather queries by aggregate outcome.", obs.L("outcome", o))
	}
	for _, o := range []string{"ok", "error"} {
		c.mProbes[o] = reg.Counter("svqact_cluster_health_probes_total",
			"Replica health probes by outcome.", obs.L("outcome", o))
	}
	c.mPruned = reg.Counter("svqact_cluster_shards_pruned_total",
		"Truncated shards not re-queried because their residual upper bound fell below the global Blo_K.")
	c.mRefines = reg.Counter("svqact_cluster_refine_rounds_total",
		"Distributed-threshold refinement rounds (re-queries of truncated shards with a doubled k).")
	c.mBreakerOpen = reg.Counter("svqact_cluster_breaker_transitions_total",
		"Circuit breaker transitions into the open state.")
	c.mMixedGen = reg.Counter("svqact_cluster_mixed_generation_answers_total",
		"Scatter-gathers that merged answers from different repository generations (marked degraded).")
	c.mRollouts = map[string]*obs.Counter{}
	for _, o := range []string{"completed", "failed"} {
		c.mRollouts[o] = reg.Counter("svqact_cluster_rollouts_total",
			"Rolling generation swaps by outcome.", obs.L("outcome", o))
	}
	c.mRolloutGauge = reg.Gauge("svqact_cluster_rollout_running",
		"1 while a rolling generation swap is in progress.")
	c.scatterHist = reg.Histogram("svqact_cluster_scatter_seconds",
		"Whole scatter-gather latency (all rounds).", latencyBounds)
	c.admission = newAdmissionGate(reg, cfg.MaxConcurrent, cfg.QueueDepth, cfg.QueueWait, c.pressure)
	replicas := 0
	for _, spec := range shards {
		if spec.Name == "" || len(spec.Replicas) == 0 {
			return nil, fmt.Errorf("cluster: shard needs a name and at least one replica")
		}
		if c.byName[spec.Name] != nil {
			return nil, fmt.Errorf("cluster: duplicate shard %q", spec.Name)
		}
		sh := &shard{
			name:    spec.Name,
			latency: obs.NewHistogram(latencyBounds),
			requests: reg.Counter("svqact_cluster_shard_requests_total",
				"Per-shard replica attempts.", obs.L("shard", spec.Name), obs.L("outcome", "ok")),
			errs: reg.Counter("svqact_cluster_shard_requests_total",
				"Per-shard replica attempts.", obs.L("shard", spec.Name), obs.L("outcome", "error")),
			retries: reg.Counter("svqact_cluster_retries_total",
				"Same-replica retries.", obs.L("shard", spec.Name)),
			failovers: reg.Counter("svqact_cluster_failovers_total",
				"Attempts moved to another replica.", obs.L("shard", spec.Name)),
			hedges: reg.Counter("svqact_cluster_hedges_total",
				"Hedged (raced) requests launched.", obs.L("shard", spec.Name)),
			hedgeWins: reg.Counter("svqact_cluster_hedge_wins_total",
				"Hedged requests that answered first.", obs.L("shard", spec.Name)),
			backpressure: reg.Counter("svqact_cluster_admission_backpressure_total",
				"Shard 429/503 answers folded into the admission gate's pressure signal.",
				obs.L("shard", spec.Name)),
		}
		reg.AttachHistogram("svqact_cluster_shard_latency_seconds",
			"Successful shard attempt latency.", sh.latency, obs.L("shard", spec.Name))
		for _, b := range spec.Replicas {
			bc := cfg.Breaker
			bc.onTransition = func(from, to BreakerState) {
				if to == BreakerOpen {
					c.mBreakerOpen.Inc()
				}
			}
			sh.replicas = append(sh.replicas, &replica{backend: b, breaker: NewBreaker(bc)})
		}
		replicas += len(sh.replicas)
		c.shards = append(c.shards, sh)
		c.byName[spec.Name] = sh
	}
	reg.Gauge("svqact_cluster_shards", "Configured shards.").Set(int64(len(c.shards)))
	reg.Gauge("svqact_cluster_replicas", "Configured replicas across all shards.").Set(int64(replicas))
	return c, nil
}

// pressure reports the longest remaining shard backpressure window, 0
// when every shard is calm. The admission gate consults it on every
// arrival that finds no free slot.
func (c *Coordinator) pressure() time.Duration {
	var until int64
	for _, sh := range c.shards {
		if u := sh.pressureUntil.Load(); u > until {
			until = u
		}
	}
	if until == 0 {
		return 0
	}
	if d := time.Until(time.Unix(0, until)); d > 0 {
		return d
	}
	return 0
}

// ShardNames lists the configured shards in declaration order.
func (c *Coordinator) ShardNames() []string {
	names := make([]string, len(c.shards))
	for i, sh := range c.shards {
		names[i] = sh.name
	}
	return names
}

// ShardOutcome is one shard's outcome within one coordinator query.
type ShardOutcome struct {
	Shard string `json:"shard"`
	// Outcome: "ok" (primary answered first try), "degraded" (answered
	// via retry, failover or hedging — or lost a refinement round after
	// answering), "failed" (replica set exhausted, no answer).
	Outcome string `json:"outcome"`
	// Replica that produced the accepted answer, when any.
	Replica  string `json:"replica,omitempty"`
	Attempts int    `json:"attempts"`
	Hedges   int    `json:"hedges,omitempty"`
	Error    string `json:"error,omitempty"`
}

// TopKResult is the merged answer of one scatter-gather query.
type TopKResult struct {
	K          int         `json:"k"`
	Sequences  []RankedSeq `json:"sequences"`
	Candidates int         `json:"candidates"`
	// BloK is the final global k-th lower bound the merge pruned with.
	BloK float64 `json:"blo_k"`
	// Rounds counts scatter rounds (1 + refinements); PrunedShards the
	// truncated shards never re-queried because their residual upper
	// bound fell below BloK.
	Rounds       int `json:"rounds"`
	PrunedShards int `json:"pruned_shards"`

	Shards    []ShardOutcome `json:"shard_details"`
	Partition Partition      `json:"shards"`
	// Generations maps answered shards to the repository generation that
	// served them. MixedGenerations is the generation-consistency guard:
	// true when the merge combined answers from different repository
	// generations (across shards, or across refinement rounds within one
	// shard during an in-flight rollout) — the answer is internally
	// consistent per shard but may interleave old- and new-generation
	// data, so it is marked degraded rather than silently merged.
	Generations      map[string]int `json:"generations,omitempty"`
	MixedGenerations bool           `json:"mixed_generations,omitempty"`
}

// Degraded reports whether any shard fell short of "ok" or the answer
// mixed repository generations.
func (r *TopKResult) Degraded() bool {
	return len(r.Partition.Degraded) > 0 || len(r.Partition.Failed) > 0 || r.MixedGenerations
}

// TopK scatter-gathers one ranked statement. On whole-shard loss it
// returns the surviving shards' merged top-k together with a
// *DegradedError — callers distinguish "complete answer" (nil error) from
// "correct but partial coverage" (DegradedError) from hard failure.
func (c *Coordinator) TopK(ctx context.Context, sql string) (*TopKResult, error) {
	st, err := sqlq.Parse(sql)
	if err != nil {
		return nil, &BadRequestError{Msg: err.Error()}
	}
	plan, err := st.Plan()
	if err != nil {
		return nil, &BadRequestError{Msg: err.Error()}
	}
	if plan.Online {
		return nil, &BadRequestError{Msg: "cluster: only ranked (ORDER BY rank() LIMIT k) statements shard; run online statements against a single shard"}
	}
	k := plan.K

	// Admission: bounded concurrency with a short, deadline-aware queue.
	// Shed requests never touch a shard — the typed *OverloadError maps to
	// 429 + Retry-After at the HTTP layer.
	release, aerr := c.admission.acquire(ctx)
	if aerr != nil {
		return nil, aerr
	}
	defer release()

	ctx, cancel := context.WithTimeout(ctx, c.cfg.QueryTimeout)
	defer cancel()
	start := time.Now()
	span := obs.StartSpan(ctx, "cluster.topk")
	defer span.End()
	// Every per-shard span (and, transitively, every attempt span and
	// grafted shard subtree) parents under the scatter span.
	ctx = obs.WithSpan(ctx, span)
	qid := obs.TraceFrom(ctx).ID()

	res := &TopKResult{K: k, Generations: map[string]int{}}
	// genTorn trips when one shard's generation changes between rounds: a
	// refinement round answered by a replica already swapped to (or still
	// on) a different generation than the round merged earlier.
	genTorn := false
	responses := map[string]*Response{}
	outcomes := map[string]*ShardOutcome{}
	kShard := map[string]int{}
	need := append([]*shard(nil), c.shards...)
	for _, sh := range need {
		kShard[sh.name] = k
	}

	var firstFailure error
	for round := 1; round <= c.cfg.MaxRefineRounds && len(need) > 0; round++ {
		res.Rounds = round
		if round > 1 {
			c.mRefines.Inc()
		}
		type shardAnswer struct {
			sh    *shard
			resp  *Response
			out   ShardOutcome
			fatal error
		}
		ch := make(chan shardAnswer, len(need))
		for _, sh := range need {
			go func(sh *shard) {
				req := Request{SQL: sql, K: kShard[sh.name], QueryID: qid}
				resp, out, fatal := c.queryShard(ctx, sh, req)
				ch <- shardAnswer{sh, resp, out, fatal}
			}(sh)
		}
		var fatal error
		for range need {
			a := <-ch
			foldOutcome(outcomes, a.sh.name, a.out, responses[a.sh.name] != nil || a.resp != nil)
			if a.fatal != nil && fatal == nil {
				fatal = a.fatal
			}
			if a.resp != nil {
				responses[a.sh.name] = a.resp
				if prev, seen := res.Generations[a.sh.name]; seen &&
					prev > 0 && a.resp.Generation > 0 && prev != a.resp.Generation {
					genTorn = true
				}
				res.Generations[a.sh.name] = a.resp.Generation
			} else if firstFailure == nil && a.out.Error != "" {
				firstFailure = fmt.Errorf("shard %s: %s", a.sh.name, a.out.Error)
			}
		}
		if fatal != nil {
			return nil, fatal
		}

		res.Sequences, res.BloK = mergeTopK(k, responses)

		// Distributed threshold: re-query only the truncated shards whose
		// residual upper bound still clears the global Blo_K — with a
		// doubled k, capped at the shard's candidate count.
		need = need[:0]
		for name, resp := range responses {
			if !resp.Truncated || resp.ResidualUpper <= res.BloK {
				continue
			}
			if resp.Candidates > 0 && kShard[name] >= resp.Candidates {
				continue
			}
			next := kShard[name] * 2
			if resp.Candidates > 0 && next > resp.Candidates {
				next = resp.Candidates
			}
			kShard[name] = next
			need = append(need, c.byName[name])
		}
		sort.Slice(need, func(i, j int) bool { return need[i].name < need[j].name })
	}

	res.Candidates = 0
	for _, resp := range responses {
		res.Candidates += resp.Candidates
	}
	for _, resp := range responses {
		if resp.Truncated && resp.ResidualUpper <= res.BloK {
			res.PrunedShards++
			c.mPruned.Inc()
		}
	}
	if math.IsInf(res.BloK, 0) || math.IsNaN(res.BloK) {
		// Fewer than k candidates cluster-wide: no threshold ever formed
		// (-Inf internally). JSON cannot carry non-finite floats, so the
		// answer reports 0 — Candidates < K already tells the client why.
		res.BloK = 0
	}

	// Generation-consistency guard: a scatter that merged answers served
	// by different repository generations (mid-rollout, or after a torn
	// partial swap) is correct per shard but may interleave old- and
	// new-generation data globally — mark it degraded, never merge
	// silently. Generation 0 means "unknown" (a backend that does not
	// report one) and is excluded from the comparison.
	res.MixedGenerations = genTorn
	seenGen := 0
	for _, g := range res.Generations {
		if g <= 0 {
			continue
		}
		if seenGen == 0 {
			seenGen = g
		} else if g != seenGen {
			res.MixedGenerations = true
		}
	}
	if res.MixedGenerations {
		c.mMixedGen.Inc()
	}

	for _, sh := range c.shards {
		o := outcomes[sh.name]
		if o == nil {
			o = &ShardOutcome{Shard: sh.name, Outcome: "failed", Error: "not attempted"}
		}
		res.Shards = append(res.Shards, *o)
		switch o.Outcome {
		case "ok":
			res.Partition.OK = append(res.Partition.OK, sh.name)
		case "degraded":
			res.Partition.Degraded = append(res.Partition.Degraded, sh.name)
		default:
			res.Partition.Failed = append(res.Partition.Failed, sh.name)
		}
	}

	elapsed := time.Since(start)
	c.scatterHist.Observe(elapsed.Seconds())
	span.SetAttr("k", k)
	span.SetAttr("shards", len(c.shards))
	span.SetAttr("rounds", res.Rounds)
	span.SetAttr("blo_k", res.BloK)
	span.SetAttr("pruned_shards", res.PrunedShards)
	span.SetAttr("ok", len(res.Partition.OK))
	span.SetAttr("degraded", len(res.Partition.Degraded))
	span.SetAttr("failed", len(res.Partition.Failed))
	if res.MixedGenerations {
		span.SetAttr("mixed_generations", true)
	}

	switch {
	case len(res.Partition.Failed) > 0:
		if len(res.Partition.Failed) == len(c.shards) {
			c.mQueries["failed"].Inc()
		} else {
			c.mQueries["degraded"].Inc()
		}
		if firstFailure == nil {
			firstFailure = errors.New("shard replica set exhausted")
		}
		c.log.Warn("degraded scatter-gather answer",
			"failed", res.Partition.Failed, "degraded", res.Partition.Degraded,
			"error", firstFailure.Error())
		return res, &DegradedError{
			Failed:   append([]string(nil), res.Partition.Failed...),
			Degraded: append([]string(nil), res.Partition.Degraded...),
			Err:      firstFailure,
		}
	case len(res.Partition.Degraded) > 0 || res.MixedGenerations:
		c.mQueries["degraded"].Inc()
	default:
		c.mQueries["ok"].Inc()
	}
	return res, nil
}

// foldOutcome merges a round's shard outcome into the accumulated one,
// keeping the worst (failed > degraded > ok) — except that a shard with an
// earlier answer never regresses past degraded (a lost refinement round
// costs depth, not the shard's data).
func foldOutcome(outcomes map[string]*ShardOutcome, name string, cur ShardOutcome, hasData bool) {
	sev := func(o string) int {
		switch o {
		case "ok":
			return 0
		case "degraded":
			return 1
		default:
			return 2
		}
	}
	prev := outcomes[name]
	if prev == nil {
		o := cur
		if o.Outcome == "failed" && hasData {
			o.Outcome = "degraded"
		}
		outcomes[name] = &o
		return
	}
	prev.Attempts += cur.Attempts
	prev.Hedges += cur.Hedges
	if cur.Replica != "" {
		prev.Replica = cur.Replica
	}
	if cur.Error != "" {
		prev.Error = cur.Error
	}
	if sev(cur.Outcome) > sev(prev.Outcome) {
		prev.Outcome = cur.Outcome
	}
	if prev.Outcome == "failed" && hasData {
		prev.Outcome = "degraded"
	}
}

// mergeTopK merges the shards' ranked lists into the global top-k and
// returns it with the global k-th lower bound (Blo_K) the refinement loop
// prunes against. Ties break on (video, start clip) so merges are
// deterministic across shard arrival orders.
func mergeTopK(k int, responses map[string]*Response) ([]RankedSeq, float64) {
	var all []RankedSeq
	for name, r := range responses {
		for _, s := range r.Sequences {
			s.Shard = name
			all = append(all, s)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		if all[i].Video != all[j].Video {
			return all[i].Video < all[j].Video
		}
		return all[i].StartClip < all[j].StartClip
	})
	bs := make([]rank.Bounds, len(all))
	for i, s := range all {
		bs[i] = s.Bounds()
	}
	bloK := rank.TopKLowerBound(bs, k)
	if len(all) > k {
		all = all[:k]
	}
	return all, bloK
}

// attemptAnswer is one replica attempt's result. span is the attempt's
// trace span; the winning attempt gets the shard's reported trace grafted
// under it.
type attemptAnswer struct {
	resp    *Response
	err     error
	rep     *replica
	hedged  bool
	elapsed time.Duration
	span    *obs.Span
}

// queryShard runs one shard's attempt set for one round: replica rotation
// with breaker gating, exponential backoff with deterministic jitter
// between failures, and an optional hedged second request after the
// shard's adaptive latency percentile. A *BadRequestError from a replica
// is fatal (third return): the statement itself is bad and the whole query
// must stop rather than fail over.
func (c *Coordinator) queryShard(ctx context.Context, sh *shard, req Request) (*Response, ShardOutcome, error) {
	out := ShardOutcome{Shard: sh.name, Outcome: "failed"}
	sctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	span := obs.StartSpan(ctx, "cluster.shard:"+sh.name)
	defer func() {
		span.SetAttr("outcome", out.Outcome)
		span.SetAttr("attempts", out.Attempts)
		span.SetAttr("hedges", out.Hedges)
		if out.Replica != "" {
			span.SetAttr("replica", out.Replica)
		}
		span.End()
	}()

	budget := c.cfg.AttemptsPerReplica * len(sh.replicas)
	resCh := make(chan attemptAnswer, budget)
	var (
		attempts int
		inflight int
		hedges   int
		next     int
		lastRep  *replica
		lastErr  error
	)
	launch := func(hedged bool) bool {
		if attempts >= budget {
			return false
		}
		// Rotate to the next replica whose breaker admits; when every
		// breaker refuses, force the next replica anyway — an all-open
		// shard should still probe rather than instafail the query.
		var rep *replica
		for i := 0; i < len(sh.replicas); i++ {
			r := sh.replicas[(next+i)%len(sh.replicas)]
			if r.breaker.Allow() {
				rep = r
				next = (next + i + 1) % len(sh.replicas)
				break
			}
		}
		if rep == nil {
			// Prefer a replica that is merely tripped open over one held
			// by a rollout drain — a draining replica is mid-reload and
			// the forced probe would only race the swap.
			for i := 0; i < len(sh.replicas); i++ {
				if r := sh.replicas[(next+i)%len(sh.replicas)]; !r.breaker.Held() {
					rep = r
					next = (next + i + 1) % len(sh.replicas)
					break
				}
			}
		}
		if rep == nil {
			rep = sh.replicas[next%len(sh.replicas)]
			next++
		}
		attempts++
		inflight++
		if hedged {
			hedges++
			sh.hedges.Inc()
		} else if attempts > 1 {
			if rep == lastRep {
				sh.retries.Inc()
			} else {
				sh.failovers.Inc()
			}
		}
		lastRep = rep
		// One child span per attempt: a hedge winner and a failed first
		// attempt stay distinguishable in the retained trace.
		aspan := span.StartChild("cluster.attempt").
			SetAttr("replica", rep.backend.Name()).
			SetAttr("attempt", attempts).
			SetAttr("hedged", hedged)
		areq := req
		areq.ParentSpan = aspan.ID()
		go func(rep *replica, hedged bool, aspan *obs.Span, areq Request) {
			t0 := time.Now()
			resp, err := rep.backend.Query(sctx, areq)
			if err != nil {
				aspan.SetAttr("outcome", "error").SetAttr("error", err.Error())
			} else {
				aspan.SetAttr("outcome", "ok")
			}
			aspan.End()
			resCh <- attemptAnswer{resp: resp, err: err, rep: rep, hedged: hedged, elapsed: time.Since(t0), span: aspan}
		}(rep, hedged, aspan, areq)
		return true
	}

	launch(false)
	var hedgeC <-chan time.Time
	if d := c.hedgeDelay(sh); d > 0 && budget > 1 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	var backoffC <-chan time.Time
	fail := func(err error) (*Response, ShardOutcome, error) {
		out.Attempts = attempts
		out.Hedges = hedges
		if err != nil {
			out.Error = err.Error()
		}
		return nil, out, nil
	}
	for {
		select {
		case a := <-resCh:
			inflight--
			if a.err == nil {
				a.rep.breaker.Success()
				sh.latency.Observe(a.elapsed.Seconds())
				sh.requests.Inc()
				if a.hedged {
					sh.hedgeWins.Inc()
				}
				out.Outcome = "ok"
				// Anything short of the primary answering first try is
				// degraded: retries, failovers, hedges, and answers from a
				// non-primary replica (the primary is down or broken open).
				if attempts > 1 || hedges > 0 || a.rep != sh.replicas[0] {
					out.Outcome = "degraded"
				}
				// Splice the shard's own span tree (re-anchored to the
				// winning attempt) into the coordinator trace.
				a.span.Graft(a.resp.Trace)
				out.Replica = a.rep.backend.Name()
				out.Attempts = attempts
				out.Hedges = hedges
				return a.resp, out, nil
			}
			var bad *BadRequestError
			if errors.As(a.err, &bad) {
				out.Error = a.err.Error()
				out.Attempts = attempts
				return nil, out, a.err
			}
			a.rep.breaker.Failure()
			sh.errs.Inc()
			lastErr = a.err
			// A replica answering 429/503 is telling the cluster to slow
			// down: raise the shard's backpressure signal (admission sheds
			// on it) and honor its Retry-After hint in the retry backoff.
			var hint time.Duration
			var re *replicaError
			if errors.As(a.err, &re) && (re.Status == 429 || re.Status == 503) {
				hint = re.RetryAfter
				p := hint
				if p <= 0 {
					p = c.cfg.MaxBackoff
				}
				sh.raisePressure(p)
			}
			if attempts >= budget && inflight == 0 {
				return fail(lastErr)
			}
			if attempts < budget && backoffC == nil {
				backoffC = time.After(c.backoff(req, sh.name, attempts, hint))
			}
		case <-backoffC:
			backoffC = nil
			if !launch(false) && inflight == 0 {
				return fail(lastErr)
			}
		case <-hedgeC:
			hedgeC = nil
			launch(true)
		case <-sctx.Done():
			if lastErr == nil {
				lastErr = sctx.Err()
			}
			return fail(lastErr)
		}
	}
}

// hedgeDelay returns the hedge trigger for the shard: the configured floor,
// raised to the shard's observed HedgeQuantile latency once at least 16
// successful attempts have been recorded. 0 disables hedging.
func (c *Coordinator) hedgeDelay(sh *shard) time.Duration {
	if c.cfg.HedgeAfter <= 0 {
		return 0
	}
	d := c.cfg.HedgeAfter
	if sh.latency.Count() >= 16 {
		if q := sh.latency.Quantile(c.cfg.HedgeQuantile); q > 0 {
			if qd := time.Duration(q * float64(time.Second)); qd > d {
				d = qd
			}
		}
	}
	return d
}

// backoff returns the delay before attempt+1, exponential in the attempt
// number with deterministic jitter keyed on (seed, query, shard, attempt).
// hint is the replica's Retry-After when the failed attempt carried one
// (429/503): the jittered exponential delay is raised to honor it, with
// the hint clamped to MaxBackoff so a hostile or confused replica cannot
// park the coordinator indefinitely.
func (c *Coordinator) backoff(req Request, shardName string, attempt int, hint time.Duration) time.Duration {
	d := c.cfg.BaseBackoff
	for i := 1; i < attempt && d < c.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	h := detect.Key64(c.cfg.Seed,
		detect.KeyString(req.QueryID), detect.KeyString(req.SQL),
		detect.KeyString(shardName), uint64(attempt))
	factor := 0.5 + detect.Unit01(h)
	out := time.Duration(float64(d) * factor)
	if hint > c.cfg.MaxBackoff {
		hint = c.cfg.MaxBackoff
	}
	if hint > out {
		out = hint
	}
	return out
}

// ReplicaStatus is one replica's health snapshot.
type ReplicaStatus struct {
	Name    string `json:"name"`
	Breaker string `json:"breaker"`
	// LastProbe is the RFC3339 time of the last health probe ("" before
	// the first); LastError its failure message ("" when healthy).
	LastProbe string `json:"last_probe,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// ShardStatus is one shard's health snapshot.
type ShardStatus struct {
	Name     string          `json:"name"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// Status snapshots every shard's replica health for /shards.
func (c *Coordinator) Status() []ShardStatus {
	var out []ShardStatus
	for _, sh := range c.shards {
		ss := ShardStatus{Name: sh.name}
		for _, r := range sh.replicas {
			breaker := r.breaker.State().String()
			if r.breaker.Held() {
				breaker = "draining"
			}
			r.mu.Lock()
			rs := ReplicaStatus{
				Name:      r.backend.Name(),
				Breaker:   breaker,
				LastError: r.lastErr,
			}
			if !r.lastProbe.IsZero() {
				rs.LastProbe = r.lastProbe.UTC().Format(time.RFC3339Nano)
			}
			r.mu.Unlock()
			ss.Replicas = append(ss.Replicas, rs)
		}
		out = append(out, ss)
	}
	return out
}

// Admission snapshots the admission gate for the health endpoint.
func (c *Coordinator) Admission() AdmissionHealth {
	return c.admission.health()
}

// ProbeAll health-checks every replica once, feeding results into the
// breakers (a passing probe closes an open breaker, so a restarted replica
// rejoins without waiting for a live query to half-open it; a failing
// probe trips persistent deadness before queries pay for it).
func (c *Coordinator) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sh := range c.shards {
		for _, r := range sh.replicas {
			wg.Add(1)
			go func(r *replica) {
				defer wg.Done()
				pctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
				defer cancel()
				err := r.backend.Healthy(pctx)
				r.mu.Lock()
				r.lastProbe = time.Now()
				if err != nil {
					r.lastErr = err.Error()
				} else {
					r.lastErr = ""
				}
				r.mu.Unlock()
				if err != nil {
					c.mProbes["error"].Inc()
					r.breaker.Failure()
				} else {
					c.mProbes["ok"].Inc()
					r.breaker.Success()
				}
			}(r)
		}
	}
	wg.Wait()
}

// StartHealthChecks probes all replicas every interval until the returned
// stop function is called (or ctx ends). Tick phases are jittered
// deterministically per coordinator seed so fleets of coordinators do not
// probe in lockstep.
func (c *Coordinator) StartHealthChecks(ctx context.Context, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := 0
		for {
			tick++
			h := detect.Key64(c.cfg.Seed, 0x6865616c7468, uint64(tick))
			jittered := time.Duration(float64(interval) * (0.75 + 0.5*detect.Unit01(h)))
			select {
			case <-ctx.Done():
				return
			case <-time.After(jittered):
			}
			c.ProbeAll(ctx)
		}
	}()
	return func() {
		cancel()
		<-done
	}
}
