package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"svqact/internal/obs"
)

func testGate(maxC, depth int, wait time.Duration, pressure func() time.Duration) *admissionGate {
	if pressure == nil {
		pressure = func() time.Duration { return 0 }
	}
	return newAdmissionGate(obs.NewRegistry(), maxC, depth, wait, pressure)
}

func mustOverload(t *testing.T, err error, reason string) *OverloadError {
	t.Helper()
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("got %v, want *OverloadError", err)
	}
	if over.Reason != reason {
		t.Fatalf("shed reason %q, want %q (err: %v)", over.Reason, reason, err)
	}
	if over.RetryAfter <= 0 {
		t.Fatalf("OverloadError without a RetryAfter: %v", err)
	}
	return over
}

func TestAdmissionFastPathAndRelease(t *testing.T) {
	g := testGate(1, -1, 50*time.Millisecond, nil)
	release, err := g.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	release()
	release, err = g.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	release()
	if got := g.admitted.Value(); got != 2 {
		t.Fatalf("admitted = %d, want 2", got)
	}
	if got := g.inflight.Value(); got != 0 {
		t.Fatalf("inflight = %d after release, want 0", got)
	}
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	g := testGate(1, -1, 50*time.Millisecond, nil)
	release, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, err = g.acquire(context.Background())
	over := mustOverload(t, err, "queue_full")
	if over.RetryAfter != 50*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want the queue wait", over.RetryAfter)
	}
	if got := g.rejected["queue_full"].Value(); got != 1 {
		t.Fatalf("rejected{queue_full} = %d, want 1", got)
	}
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	g := testGate(1, 1, 5*time.Second, nil)
	release, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r2, err := g.acquire(context.Background())
		if err == nil {
			r2()
		}
		got <- err
	}()
	// Wait for the second request to be queued, then confirm a third is
	// shed (queue depth 1) before freeing the slot.
	deadline := time.Now().Add(2 * time.Second)
	for g.waiting.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = g.acquire(context.Background())
	mustOverload(t, err, "queue_full")
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
}

func TestAdmissionSaturatedAfterQueueWait(t *testing.T) {
	g := testGate(1, 1, 20*time.Millisecond, nil)
	release, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	_, err = g.acquire(context.Background())
	mustOverload(t, err, "saturated")
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("saturated shed after %v, want >= the queue wait", elapsed)
	}
}

func TestAdmissionDeadlineAware(t *testing.T) {
	g := testGate(1, 1, 10*time.Second, nil)
	release, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// A deadline shorter than the queue wait bounds the queue time: the
	// request is shed as "deadline" instead of sitting out 10s.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = g.acquire(ctx)
	mustOverload(t, err, "deadline")
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline shed took %v; the full queue wait was not skipped", elapsed)
	}

	// An already-expired deadline is shed immediately.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	_, err = g.acquire(expired)
	mustOverload(t, err, "deadline")
}

func TestAdmissionBackpressureSheds(t *testing.T) {
	window := 700 * time.Millisecond
	g := testGate(1, 4, 5*time.Second, func() time.Duration { return window })
	release, err := g.acquire(context.Background())
	if err != nil {
		t.Fatalf("pressure must not shed while a slot is free: %v", err)
	}
	_, err = g.acquire(context.Background())
	over := mustOverload(t, err, "backpressure")
	if over.RetryAfter != window {
		t.Fatalf("RetryAfter = %v, want the pressure window %v", over.RetryAfter, window)
	}
	release()
	// Slot free again: pressure alone never sheds.
	release, err = g.acquire(context.Background())
	if err != nil {
		t.Fatalf("free-slot acquire under pressure: %v", err)
	}
	release()
}

func TestShardPressureRaisedBy429(t *testing.T) {
	calls := 0
	throttling := &stubBackend{name: "s0-r0", fn: func(ctx context.Context, req Request) (*Response, error) {
		calls++
		if calls == 1 {
			return nil, &replicaError{Replica: "s0-r0", Status: 429,
				RetryAfter: 2 * time.Second, Err: errors.New("throttled")}
		}
		return &Response{Shard: "s0", Replica: "s0-r0", Generation: 1}, nil
	}}
	c, err := New([]ShardSpec{{Name: "s0", Replicas: []Backend{throttling}}}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.TopK(context.Background(), rankedSQL); err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if p := c.pressure(); p <= 0 || p > 2*time.Second {
		t.Fatalf("pressure after a 429 = %v, want (0, 2s]", p)
	}
	if got := c.shards[0].backpressure.Value(); got != 1 {
		t.Fatalf("backpressure counter = %d, want 1", got)
	}
}

func TestBackoffHonorsRetryAfterHint(t *testing.T) {
	cfg := fastConfig()
	cfg.BaseBackoff = time.Millisecond
	cfg.MaxBackoff = 50 * time.Millisecond
	c, err := New([]ShardSpec{{Name: "s0", Replicas: []Backend{&stubBackend{name: "s0-r0",
		fn: func(context.Context, Request) (*Response, error) { return nil, errors.New("nope") }}}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{SQL: rankedSQL, QueryID: "deadbeefdeadbeef"}

	plain := c.backoff(req, "s0", 1, 0)
	if plain < cfg.BaseBackoff/2 || plain > cfg.MaxBackoff+cfg.MaxBackoff/2 {
		t.Fatalf("no-hint backoff %v outside [base/2, 1.5*max]", plain)
	}
	// A hint above the jittered delay is honored exactly.
	if got := c.backoff(req, "s0", 1, 20*time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("backoff with 20ms hint = %v, want 20ms", got)
	}
	// A hint above MaxBackoff is clamped to it.
	if got := c.backoff(req, "s0", 1, 5*time.Second); got != cfg.MaxBackoff {
		t.Fatalf("backoff with 5s hint = %v, want the %v ceiling", got, cfg.MaxBackoff)
	}
	// A hint below the jittered delay changes nothing.
	if got := c.backoff(req, "s0", 6, time.Nanosecond); got != c.backoff(req, "s0", 6, 0) {
		t.Fatalf("tiny hint changed the backoff: %v != %v", got, c.backoff(req, "s0", 6, 0))
	}
}

// overloadedCoordinator builds a 1-slot coordinator whose single replica
// blocks until the returned unblock is called, plus a goroutine holding
// the slot. Callers must call unblock exactly once.
func overloadedCoordinator(t *testing.T) (c *Coordinator, unblock func(), served *atomic.Int64) {
	t.Helper()
	block := make(chan struct{})
	n := new(atomic.Int64)
	backend := &stubBackend{name: "s0-r0", fn: func(ctx context.Context, req Request) (*Response, error) {
		n.Add(1)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &Response{Shard: "s0", Replica: "s0-r0", Generation: 1}, nil
	}}
	cfg := fastConfig()
	cfg.MaxConcurrent = 1
	cfg.QueueDepth = -1
	c, err := New([]ShardSpec{{Name: "s0", Replicas: []Backend{backend}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c.TopK(context.Background(), rankedSQL)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.admission.inflight.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("slot-holder query never started")
		}
		time.Sleep(time.Millisecond)
	}
	var once bool
	return c, func() {
		if !once {
			once = true
			close(block)
			<-done
		}
	}, n
}

func TestCoordinatorShedsBeforeShardWork(t *testing.T) {
	c, unblock, served := overloadedCoordinator(t)
	defer unblock()
	_, err := c.TopK(context.Background(), rankedSQL)
	mustOverload(t, err, "queue_full")
	if got := served.Load(); got != 1 {
		t.Fatalf("shed query reached the shard: %d backend calls, want 1", got)
	}
}

func TestHandlerOverload429(t *testing.T) {
	c, unblock, _ := overloadedCoordinator(t)
	defer unblock()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"sql": `+jsonString(rankedSQL)+`}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After header = %q, want a positive seconds value", ra)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "overloaded") {
		t.Fatalf("error body %q does not mention the overload", body.Error)
	}

	// The health endpoint mirrors the admission counters.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Admission AdmissionHealth `json:"admission"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Admission.Capacity != 1 || health.Admission.Inflight != 1 || health.Admission.Rejected < 1 {
		t.Fatalf("admission health = %+v, want capacity 1, inflight 1, rejected >= 1", health.Admission)
	}

	// And the metrics exposition carries the admission family.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"svqact_cluster_admission_rejected_total",
		"svqact_cluster_admission_admitted_total",
		"svqact_cluster_admission_inflight",
	} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("/metrics is missing %s", name)
		}
	}
}

func TestHandlerBatchPerEntryShedding(t *testing.T) {
	c, unblock, _ := overloadedCoordinator(t)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	post := func(queries []string) (*http.Response, BatchAnswer) {
		t.Helper()
		body, _ := json.Marshal(map[string]any{"queries": queries})
		resp, err := http.Post(srv.URL+"/query/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out BatchAnswer
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	// Every rankable entry sheds while the slot is held: the whole batch
	// is a 429 with Retry-After, each entry individually marked.
	resp, out := post([]string{rankedSQLK(3), rankedSQLK(4)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("all-shed batch status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("all-shed batch lost the Retry-After header")
	}
	for i, e := range out.Entries {
		if !e.Shed || e.RetryAfterSeconds < 1 {
			t.Fatalf("entry %d = shed %v retry_after %d, want shed with a retry hint", i, e.Shed, e.RetryAfterSeconds)
		}
	}

	// A mixed batch (one shed, one rejected at parse before admission)
	// stays a 200 but still carries Retry-After for the shed entry.
	resp, out = post([]string{rankedSQLK(3), "THIS IS NOT SQL"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partially-shed batch status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("partially-shed batch lost the Retry-After header")
	}
	if !out.Entries[0].Shed || out.Entries[1].Shed {
		t.Fatalf("shed flags = [%v %v], want [true false]", out.Entries[0].Shed, out.Entries[1].Shed)
	}
	if out.Entries[1].Error == "" {
		t.Fatal("parse-rejected entry lost its error")
	}

	// Slot freed: nothing sheds and the header disappears.
	unblock()
	resp, out = post([]string{rankedSQLK(3)})
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Retry-After") != "" {
		t.Fatalf("healthy batch: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if out.Entries[0].Shed {
		t.Fatal("healthy batch entry marked shed")
	}
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
