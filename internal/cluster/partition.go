package cluster

import (
	"fmt"

	"svqact/internal/detect"
	"svqact/internal/rank"
)

// ShardOf assigns a repository member (video) to one of n shards by keyed
// hash — stable across processes and runs, so every tier (splitter,
// coordinator, operators reading logs) agrees on the placement without a
// shard map service.
func ShardOf(member string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(detect.KeyString(member) % uint64(n))
}

// PartitionMembers splits member names into n shard groups by ShardOf.
// Order within a group follows the input order.
func PartitionMembers(members []string, n int) [][]string {
	if n < 1 {
		n = 1
	}
	groups := make([][]string, n)
	for _, m := range members {
		i := ShardOf(m, n)
		groups[i] = append(groups[i], m)
	}
	return groups
}

// SplitRepository partitions the repository at srcDir into len(outDirs)
// shard repositories by video, copying each member index into its shard's
// directory (Save format, so every shard is itself a valid repository a
// cmd/serve -repo process can serve). Existing members in the output
// repositories cause an error — split into fresh directories.
func SplitRepository(srcDir string, outDirs []string) error {
	if len(outDirs) == 0 {
		return fmt.Errorf("cluster: no shard output directories")
	}
	src, err := rank.OpenRepository(srcDir)
	if err != nil {
		return err
	}
	defer src.Close()
	outs := make([]*rank.Repository, len(outDirs))
	for i, dir := range outDirs {
		out, err := rank.OpenRepository(dir)
		if err != nil {
			return err
		}
		defer out.Close()
		outs[i] = out
	}
	for _, name := range src.Videos() {
		ix := src.Member(name)
		if ix == nil {
			return fmt.Errorf("cluster: member %q vanished during split", name)
		}
		if err := outs[ShardOf(name, len(outDirs))].Add(ix); err != nil {
			return fmt.Errorf("cluster: splitting member %q: %w", name, err)
		}
	}
	return nil
}
