package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"svqact/internal/rank"
)

// twoGenWorld builds n shards with replicasPer LocalBackend replicas each,
// all serving generation 1, with generation 2 staged on every replica. The
// monoliths of both generations come along as ground truth.
func twoGenWorld(t *testing.T, n, replicasPer int) (specs []ShardSpec, locals [][]*LocalBackend, mono1, mono2 *rank.Index) {
	t.Helper()
	gen1, mono1 := buildWorld(t, n)
	gen2, mono2 := buildWorldSeeded(t, n, 200)
	for i := range gen1 {
		spec := ShardSpec{Name: shardName(i)}
		var reps []*LocalBackend
		for r := 0; r < replicasPer; r++ {
			b := NewLocalBackend(replicaName(i, r), 1, gen1[i])
			b.StageGeneration(2, gen2[i])
			reps = append(reps, b)
			spec.Replicas = append(spec.Replicas, b)
		}
		specs = append(specs, spec)
		locals = append(locals, reps)
	}
	return specs, locals, mono1, mono2
}

func shardName(i int) string { return "s" + string(rune('0'+i)) }

func replicaName(i, r int) string { return shardName(i) + "-r" + string(rune('0'+r)) }

func assertNoHeldBreakers(t *testing.T, c *Coordinator) {
	t.Helper()
	for _, sh := range c.shards {
		for _, rep := range sh.replicas {
			if rep.breaker.Held() {
				t.Fatalf("replica %s breaker still held after rollout", rep.backend.Name())
			}
		}
	}
}

func TestRolloutEndToEndSwap(t *testing.T) {
	specs, _, mono1, mono2 := twoGenWorld(t, 2, 2)
	c, err := New(specs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Before the rollout the cluster answers from generation 1.
	res, err := c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSeqs(t, res.Sequences, monolithTopK(t, mono1, rankedSQL))
	if res.MixedGenerations {
		t.Fatal("uniform generation 1 flagged as mixed")
	}

	if err := c.RunRollout(context.Background(), RolloutConfig{CanarySQL: rankedSQL}); err != nil {
		t.Fatalf("rollout: %v", err)
	}
	st := c.RolloutStatus()
	if st.State != "done" {
		t.Fatalf("rollout state = %q, want done (%+v)", st.State, st)
	}
	for _, sh := range st.Shards {
		if sh.State != "done" {
			t.Fatalf("shard %s state = %q, want done", sh.Shard, sh.State)
		}
		for _, r := range sh.Replicas {
			if r.State != "done" || r.FromGeneration != 1 || r.ToGeneration != 2 {
				t.Fatalf("replica %s = %+v, want done gen 1 -> 2", r.Replica, r)
			}
		}
	}
	assertNoHeldBreakers(t, c)
	if got := c.mRollouts["completed"].Value(); got != 1 {
		t.Fatalf("rollouts_total{completed} = %d, want 1", got)
	}

	// After the rollout every shard serves generation 2 and answers match
	// the generation-2 monolith.
	res, err = c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSeqs(t, res.Sequences, monolithTopK(t, mono2, rankedSQL))
	if res.MixedGenerations || res.Degraded() {
		t.Fatalf("post-rollout answer degraded: mixed %v, partition %+v", res.MixedGenerations, res.Partition)
	}
	for shardN, g := range res.Generations {
		if g != 2 {
			t.Fatalf("shard %s still on generation %d", shardN, g)
		}
	}
}

func TestRolloutHaltsOnReloadFailureThenResumes(t *testing.T) {
	specs, _, _, mono2 := twoGenWorld(t, 2, 2)
	// s1-r0's first reload tears; the second (after "repair") succeeds.
	specs[1].Replicas[0] = NewFaultBackend(specs[1].Replicas[0],
		FaultPlan{ReloadFailFrom: 1, ReloadOKFrom: 2})
	c, err := New(specs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}

	err = c.RunRollout(context.Background(), RolloutConfig{CanarySQL: rankedSQL})
	if err == nil {
		t.Fatal("rollout with a torn reload reported success")
	}
	if !strings.Contains(err.Error(), "s1-r0") || !strings.Contains(err.Error(), "reload") {
		t.Fatalf("halt error %q does not name the torn replica", err)
	}
	st := c.RolloutStatus()
	if st.State != "failed" {
		t.Fatalf("rollout state = %q, want failed", st.State)
	}
	// s0 finished before the halt; s1 halted on its first replica with the
	// old generation intact, and s1-r1 was never touched.
	if st.Shards[0].State != "done" {
		t.Fatalf("shard s0 state = %q, want done", st.Shards[0].State)
	}
	if st.Shards[1].State != "failed" {
		t.Fatalf("shard s1 state = %q, want failed", st.Shards[1].State)
	}
	if r := st.Shards[1].Replicas[0]; r.State != "failed" || r.Error == "" {
		t.Fatalf("s1-r0 rollout = %+v, want failed with the reload error", r)
	}
	if r := st.Shards[1].Replicas[1]; r.State != "pending" {
		t.Fatalf("s1-r1 rollout state = %q, want pending (halt stops the walk)", r.State)
	}
	assertNoHeldBreakers(t, c)
	if got := c.mRollouts["failed"].Value(); got != 1 {
		t.Fatalf("rollouts_total{failed} = %d, want 1", got)
	}

	// Mid-halt the cluster is mixed: s0 answers from generation 2, s1 from
	// generation 1 — still correct per shard, flagged as degraded.
	res, err := c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MixedGenerations || !res.Degraded() {
		t.Fatalf("mixed-generation answer not flagged: mixed %v, degraded %v", res.MixedGenerations, res.Degraded())
	}
	if res.Generations["s0"] != 2 || res.Generations["s1"] != 1 {
		t.Fatalf("generations after halt = %v, want s0:2 s1:1", res.Generations)
	}

	// Re-running after the repair resumes: s0 reloads as a no-op, s1
	// completes, and the guard goes quiet.
	if err := c.RunRollout(context.Background(), RolloutConfig{CanarySQL: rankedSQL}); err != nil {
		t.Fatalf("re-run after repair: %v", err)
	}
	res, err = c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSeqs(t, res.Sequences, monolithTopK(t, mono2, rankedSQL))
	if res.MixedGenerations || res.Degraded() {
		t.Fatal("post-repair answer still flagged")
	}
	assertNoHeldBreakers(t, c)
}

func TestRolloutRequireAdvance(t *testing.T) {
	gen1, _ := buildWorld(t, 1)
	b := NewLocalBackend("s0-r0", 1, gen1[0]) // nothing staged: reload is a no-op
	c, err := New([]ShardSpec{{Name: "s0", Replicas: []Backend{b}}}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	err = c.RunRollout(context.Background(), RolloutConfig{RequireAdvance: true})
	if err == nil || !strings.Contains(err.Error(), "advance") {
		t.Fatalf("no-op reload with RequireAdvance: err = %v, want a did-not-advance failure", err)
	}
	// Without RequireAdvance the same no-op walk completes.
	if err := c.RunRollout(context.Background(), RolloutConfig{}); err != nil {
		t.Fatalf("no-op rollout without RequireAdvance: %v", err)
	}
}

func TestRolloutRejectsConcurrent(t *testing.T) {
	specs, _, _, _ := twoGenWorld(t, 1, 1)
	c, err := New(specs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.rolloutMu.Lock()
	c.rolloutActive = true
	c.rolloutMu.Unlock()
	if err := c.RunRollout(context.Background(), RolloutConfig{}); !errors.Is(err, ErrRolloutActive) {
		t.Fatalf("concurrent RunRollout: err = %v, want ErrRolloutActive", err)
	}
	if err := c.StartRollout(context.Background(), RolloutConfig{}); !errors.Is(err, ErrRolloutActive) {
		t.Fatalf("concurrent StartRollout: err = %v, want ErrRolloutActive", err)
	}
	c.rolloutMu.Lock()
	c.rolloutActive = false
	c.rolloutMu.Unlock()
	if err := c.RunRollout(context.Background(), RolloutConfig{}); err != nil {
		t.Fatalf("rollout after the first finished: %v", err)
	}
}

// slowReloadBackend holds Reload until released, so tests can observe the
// draining window from outside.
type slowReloadBackend struct {
	*LocalBackend
	gate chan struct{}
}

func (b *slowReloadBackend) Reload(ctx context.Context) (int, error) {
	select {
	case <-b.gate:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	return b.LocalBackend.Reload(ctx)
}

// TestRolloutDrainSurvivesHealthProbe is the satellite regression test: a
// replica held open by a rollout drain must not be flipped back into
// rotation by a concurrent background health probe succeeding mid-reload.
func TestRolloutDrainSurvivesHealthProbe(t *testing.T) {
	gen1, _ := buildWorld(t, 1)
	gen2, _ := buildWorldSeeded(t, 1, 200)
	inner := NewLocalBackend("s0-r0", 1, gen1[0])
	inner.StageGeneration(2, gen2[0])
	slow := &slowReloadBackend{LocalBackend: inner, gate: make(chan struct{})}
	sibling := NewLocalBackend("s0-r1", 1, gen1[0])
	sibling.StageGeneration(2, gen2[0])
	cfg := fastConfig()
	cfg.ShardTimeout = 10 * time.Second // Reload blocks until we open the gate
	c, err := New([]ShardSpec{{Name: "s0", Replicas: []Backend{slow, sibling}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if err := c.StartRollout(context.Background(), RolloutConfig{}); err != nil {
		t.Fatal(err)
	}
	brk := c.shards[0].replicas[0].breaker
	deadline := time.Now().Add(5 * time.Second)
	for !brk.Held() {
		if time.Now().After(deadline) {
			t.Fatal("rollout never reached the drain")
		}
		time.Sleep(time.Millisecond)
	}

	// The replica is healthy the whole time — a background probe passes —
	// but the drain hold must discard that success and keep refusing
	// traffic until the reload finishes.
	c.ProbeAll(context.Background())
	if brk.Allow() {
		t.Fatal("health probe re-opened a draining replica to traffic")
	}
	if brk.State() != BreakerOpen {
		t.Fatalf("draining breaker state = %v, want open", brk.State())
	}
	for _, rs := range c.Status() {
		if rs.Replicas[0].Breaker != "draining" {
			t.Fatalf("status breaker = %q, want draining", rs.Replicas[0].Breaker)
		}
	}
	// Traffic keeps flowing through the sibling while r0 drains.
	if _, err := c.TopK(context.Background(), rankedSQL); err != nil {
		t.Fatalf("query during drain: %v", err)
	}

	close(slow.gate)
	for c.RolloutStatus().State == "running" {
		if time.Now().After(deadline) {
			t.Fatal("rollout never finished after the gate opened")
		}
		time.Sleep(time.Millisecond)
	}
	if st := c.RolloutStatus(); st.State != "done" {
		t.Fatalf("rollout state = %q, want done (%+v)", st.State, st)
	}
	if !brk.Allow() {
		t.Fatal("verified replica still refused after the rollout")
	}
}

func TestRolloutHTTPEndpoint(t *testing.T) {
	specs, _, _, mono2 := twoGenWorld(t, 2, 2)
	c, err := New(specs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Idle before anything starts.
	var st RolloutStatus
	getJSON(t, srv.URL+"/rollout", &st)
	if st.State != "idle" {
		t.Fatalf("initial rollout state = %q, want idle", st.State)
	}

	body, _ := json.Marshal(map[string]any{"canary_sql": rankedSQL, "drain_wait_ms": 200})
	resp, err := http.Post(srv.URL+"/rollout", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /rollout status = %d, want 202", resp.StatusCode)
	}
	// A second POST while the walk is still draining conflicts.
	resp, err = http.Post(srv.URL+"/rollout", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent POST /rollout status = %d, want 409", resp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, srv.URL+"/rollout", &st)
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollout stuck in %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("rollout state = %q, want done (%+v)", st.State, st)
	}

	res, err := c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSeqs(t, res.Sequences, monolithTopK(t, mono2, rankedSQL))
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func TestMixedGenerationGuard(t *testing.T) {
	gen1, _ := buildWorld(t, 2)
	gen2, _ := buildWorldSeeded(t, 2, 200)
	// s0 already on generation 2, s1 still on 1: the scatter must be
	// flagged, never silently merged.
	c, err := New([]ShardSpec{
		{Name: "s0", Replicas: []Backend{NewLocalBackend("s0-r0", 2, gen2[0])}},
		{Name: "s1", Replicas: []Backend{NewLocalBackend("s1-r0", 1, gen1[1])}},
	}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MixedGenerations || !res.Degraded() {
		t.Fatalf("cross-generation scatter not flagged: %+v", res.Generations)
	}
	if c.mMixedGen.Value() != 1 {
		t.Fatalf("mixed_generation_answers_total = %d, want 1", c.mMixedGen.Value())
	}

	// Generation 0 means "unknown" and is excluded: a backend that does
	// not report generations must not trip the guard.
	unknown := &stubBackend{name: "s1-r0", fn: func(ctx context.Context, req Request) (*Response, error) {
		return &Response{Shard: "s1", Replica: "s1-r0", Generation: 0}, nil
	}}
	c2, err := New([]ShardSpec{
		{Name: "s0", Replicas: []Backend{NewLocalBackend("s0-r0", 2, gen2[0])}},
		{Name: "s1", Replicas: []Backend{unknown}},
	}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err = c2.TopK(context.Background(), rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.MixedGenerations {
		t.Fatal("generation-0 (unknown) answer tripped the guard")
	}
}
