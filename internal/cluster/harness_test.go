package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"svqact/internal/rank"
	"svqact/internal/store"
	"svqact/internal/video"
)

// The test world: a handful of hand-built member (video) indexes with
// deterministic pseudo-random scores, partitioned into shard indexes the
// same way SplitRepository would, plus the monolithic merge of everything —
// the single-process ground truth every scatter-gather answer must match.

// Chosen so the keyed-hash placement leaves no empty shard at n=2
// (vid-i | vid-a vid-b vid-c) or n=3 (vid-a | vid-b vid-c | vid-i).
var testMembers = []string{"vid-a", "vid-b", "vid-c", "vid-i"}

const rankedSQL = `SELECT MERGE(clipID) AS s, RANK(act, obj)
FROM (PROCESS repo PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer)
WHERE act='jumping' AND obj.include('car')
ORDER BY RANK(act, obj) LIMIT 3`

func rankedSQLK(k int) string {
	return fmt.Sprintf(`SELECT MERGE(clipID) AS s, RANK(act, obj)
FROM (PROCESS repo PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer)
WHERE act='jumping' AND obj.include('car')
ORDER BY RANK(act, obj) LIMIT %d`, k)
}

// memberIndex hand-builds one member's index: candidate sequences at
// seed-dependent positions, scores deterministic per (name, seed).
func memberIndex(t *testing.T, name string, seed int64) *rank.Index {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	const numClips = 40
	ix := &rank.Index{
		Name:     name,
		NumClips: numClips,
		Objects:  map[string]*rank.TypeIndex{},
		Actions:  map[string]*rank.TypeIndex{},
	}
	var seqs []video.Interval
	pos := 1 + int(seed%3)
	for _, l := range []int{3, 4, 2, 5} {
		seqs = append(seqs, video.Interval{Start: pos, End: pos + l - 1})
		pos += l + 2
	}
	mkType := func(typ string) *rank.TypeIndex {
		var entries []store.Entry
		for c := 0; c < numClips; c++ {
			inSeq := false
			for _, s := range seqs {
				if s.Contains(c) {
					inSeq = true
					break
				}
			}
			if inSeq || r.Float64() < 0.4 {
				entries = append(entries, store.Entry{Clip: c, Score: 0.1 + 10*r.Float64()})
			}
		}
		tbl, err := store.NewMemTable(typ, entries)
		if err != nil {
			t.Fatal(err)
		}
		return &rank.TypeIndex{Table: tbl, Seqs: video.NewIntervalSet(seqs...)}
	}
	ix.Objects["car"] = mkType("car")
	ix.Actions["jumping"] = mkType("jumping")
	return ix
}

// buildWorld returns the members' indexes partitioned into n shard
// indexes (hash placement, same as SplitRepository) plus the monolith.
func buildWorld(t *testing.T, n int) (shardIxs []*rank.Index, mono *rank.Index) {
	t.Helper()
	return buildWorldSeeded(t, n, 100)
}

// buildWorldSeeded is buildWorld with a controllable base seed: different
// bases give the same membership and shard placement but different scores
// — two generations of "the same" repository, for rollout tests.
func buildWorldSeeded(t *testing.T, n int, base int64) (shardIxs []*rank.Index, mono *rank.Index) {
	t.Helper()
	byName := map[string]*rank.Index{}
	var all []*rank.Index
	for i, m := range testMembers {
		ix := memberIndex(t, m, base+int64(i*17))
		byName[m] = ix
		all = append(all, ix)
	}
	groups := PartitionMembers(testMembers, n)
	for i, g := range groups {
		var ixs []*rank.Index
		for _, m := range g {
			ixs = append(ixs, byName[m])
		}
		if len(ixs) == 0 {
			t.Fatalf("shard %d got no members; adjust testMembers", i)
		}
		merged, err := rank.Merge(fmt.Sprintf("shard%d", i), ixs)
		if err != nil {
			t.Fatal(err)
		}
		shardIxs = append(shardIxs, merged)
	}
	mono, err := rank.Merge("mono", all)
	if err != nil {
		t.Fatal(err)
	}
	return shardIxs, mono
}

// localShards wraps shard indexes as single-replica LocalBackend specs.
func localShards(shardIxs []*rank.Index) []ShardSpec {
	var specs []ShardSpec
	for i, ix := range shardIxs {
		name := fmt.Sprintf("s%d", i)
		specs = append(specs, ShardSpec{Name: name,
			Replicas: []Backend{NewLocalBackend(name+"-r0", 1, ix)}})
	}
	return specs
}

// monolithTopK answers sql over the monolith index — the single-process
// ground truth.
func monolithTopK(t *testing.T, mono *rank.Index, sql string) []RankedSeq {
	t.Helper()
	b := NewLocalBackend("mono", 1, mono)
	resp, err := b.Query(context.Background(), Request{SQL: sql})
	if err != nil {
		t.Fatalf("monolith query: %v", err)
	}
	return resp.Sequences
}

// restrict drops sequences not belonging to the given members.
func restrict(seqs []RankedSeq, members ...string) []RankedSeq {
	keep := map[string]bool{}
	for _, m := range members {
		keep[m] = true
	}
	var out []RankedSeq
	for _, s := range seqs {
		if keep[s.Video] {
			out = append(out, s)
		}
	}
	return out
}

func seqKey(s RankedSeq) string {
	return fmt.Sprintf("%s[%d-%d]", s.Video, s.StartClip, s.EndClip)
}

// assertSameSeqs compares ranked lists on (video, clips, score).
func assertSameSeqs(t *testing.T, got, want []RankedSeq) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d sequences, want %d\n got: %v\nwant: %v", len(got), len(want), keys(got), keys(want))
	}
	for i := range got {
		if seqKey(got[i]) != seqKey(want[i]) {
			t.Fatalf("rank %d: got %s, want %s\n got: %v\nwant: %v",
				i, seqKey(got[i]), seqKey(want[i]), keys(got), keys(want))
		}
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("rank %d (%s): score %v, want %v", i, seqKey(got[i]), got[i].Score, want[i].Score)
		}
	}
}

func keys(seqs []RankedSeq) []string {
	var out []string
	for _, s := range seqs {
		out = append(out, seqKey(s))
	}
	return out
}

// stubBackend scripts arbitrary replica behaviour per call.
type stubBackend struct {
	name string
	fn   func(ctx context.Context, req Request) (*Response, error)
}

func (b *stubBackend) Name() string { return b.name }
func (b *stubBackend) Query(ctx context.Context, req Request) (*Response, error) {
	return b.fn(ctx, req)
}
func (b *stubBackend) Healthy(context.Context) error { return nil }

// fakeClock is an injectable breaker clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// fastConfig is a test Config with tight deterministic timing.
func fastConfig() Config {
	return Config{
		QueryTimeout:       5 * time.Second,
		ShardTimeout:       2 * time.Second,
		AttemptsPerReplica: 2,
		BaseBackoff:        time.Millisecond,
		MaxBackoff:         4 * time.Millisecond,
		Seed:               7,
		Breaker:            BreakerConfig{Threshold: 100, Cooloff: time.Minute},
	}
}
