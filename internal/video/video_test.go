package video

import (
	"math/rand"
	"testing"
)

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		g    Geometry
		ok   bool
		name string
	}{
		{DefaultGeometry, true, "default"},
		{Geometry{FramesPerShot: 1, ShotsPerClip: 1}, true, "unit"},
		{Geometry{FramesPerShot: 0, ShotsPerClip: 5}, false, "zero frames per shot"},
		{Geometry{FramesPerShot: 10, ShotsPerClip: 0}, false, "zero shots per clip"},
		{Geometry{FramesPerShot: -3, ShotsPerClip: 2}, false, "negative"},
	}
	for _, c := range cases {
		if err := c.g.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestGeometryConversions(t *testing.T) {
	g := Geometry{FramesPerShot: 10, ShotsPerClip: 5}
	if got := g.FramesPerClip(); got != 50 {
		t.Fatalf("FramesPerClip = %d, want 50", got)
	}
	if got := g.ShotOfFrame(0); got != 0 {
		t.Errorf("ShotOfFrame(0) = %d", got)
	}
	if got := g.ShotOfFrame(9); got != 0 {
		t.Errorf("ShotOfFrame(9) = %d, want 0", got)
	}
	if got := g.ShotOfFrame(10); got != 1 {
		t.Errorf("ShotOfFrame(10) = %d, want 1", got)
	}
	if got := g.ClipOfFrame(49); got != 0 {
		t.Errorf("ClipOfFrame(49) = %d, want 0", got)
	}
	if got := g.ClipOfFrame(50); got != 1 {
		t.Errorf("ClipOfFrame(50) = %d, want 1", got)
	}
	if got := g.ClipOfShot(4); got != 0 {
		t.Errorf("ClipOfShot(4) = %d, want 0", got)
	}
	if got := g.ClipOfShot(5); got != 1 {
		t.Errorf("ClipOfShot(5) = %d, want 1", got)
	}
	if got := g.FrameRangeOfClip(2); got != (Interval{100, 149}) {
		t.Errorf("FrameRangeOfClip(2) = %v", got)
	}
	if got := g.ShotRangeOfClip(3); got != (Interval{15, 19}) {
		t.Errorf("ShotRangeOfClip(3) = %v", got)
	}
	if got := g.FrameRangeOfShot(7); got != (Interval{70, 79}) {
		t.Errorf("FrameRangeOfShot(7) = %v", got)
	}
	if got := g.FrameRangeOfClips(Interval{1, 2}); got != (Interval{50, 149}) {
		t.Errorf("FrameRangeOfClips([1,2]) = %v", got)
	}
}

func TestGeometryCounts(t *testing.T) {
	g := Geometry{FramesPerShot: 10, ShotsPerClip: 5}
	if got := g.NumClips(500); got != 10 {
		t.Errorf("NumClips(500) = %d, want 10", got)
	}
	if got := g.NumClips(549); got != 10 {
		t.Errorf("NumClips(549) = %d, want 10 (trailing partial clip dropped)", got)
	}
	if got := g.NumShots(95); got != 9 {
		t.Errorf("NumShots(95) = %d, want 9", got)
	}
}

func TestGeometryRoundTrip(t *testing.T) {
	g := Geometry{FramesPerShot: 7, ShotsPerClip: 3}
	for v := 0; v < 1000; v++ {
		c := g.ClipOfFrame(v)
		if r := g.FrameRangeOfClip(c); !r.Contains(v) {
			t.Fatalf("frame %d: clip %d range %v does not contain it", v, c, r)
		}
		s := g.ShotOfFrame(v)
		if r := g.FrameRangeOfShot(s); !r.Contains(v) {
			t.Fatalf("frame %d: shot %d range %v does not contain it", v, s, r)
		}
		if g.ClipOfShot(s) != c {
			t.Fatalf("frame %d: shot clip %d != frame clip %d", v, g.ClipOfShot(s), c)
		}
	}
}

func TestMetaDuration(t *testing.T) {
	m := Meta{ID: "v", NumFrames: 3000, FPS: 30, Geometry: DefaultGeometry}
	if got := m.DurationSeconds(); got != 100 {
		t.Errorf("DurationSeconds = %v, want 100", got)
	}
	if got := m.NumClips(); got != 60 {
		t.Errorf("NumClips = %d, want 60", got)
	}
	if got := m.NumShots(); got != 300 {
		t.Errorf("NumShots = %d, want 300", got)
	}
	if got := (Meta{NumFrames: 10}).DurationSeconds(); got != 0 {
		t.Errorf("zero-FPS DurationSeconds = %v, want 0", got)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{3, 7}
	if iv.Len() != 5 {
		t.Errorf("Len = %d, want 5", iv.Len())
	}
	if (Interval{5, 4}).Len() != 0 {
		t.Error("inverted interval should have Len 0")
	}
	if !iv.Contains(3) || !iv.Contains(7) || iv.Contains(8) || iv.Contains(2) {
		t.Error("Contains boundary behaviour wrong")
	}
	if !iv.Overlaps(Interval{7, 9}) || iv.Overlaps(Interval{8, 9}) {
		t.Error("Overlaps boundary behaviour wrong")
	}
	if !iv.Adjacent(Interval{8, 10}) || !(Interval{8, 10}).Adjacent(iv) || iv.Adjacent(Interval{9, 10}) {
		t.Error("Adjacent behaviour wrong")
	}
}

func TestIntervalIntersect(t *testing.T) {
	got, ok := Interval{3, 7}.Intersect(Interval{5, 10})
	if !ok || got != (Interval{5, 7}) {
		t.Errorf("Intersect = %v,%v", got, ok)
	}
	if _, ok := (Interval{3, 7}).Intersect(Interval{8, 10}); ok {
		t.Error("disjoint intervals should not intersect")
	}
}

func TestIntervalIoU(t *testing.T) {
	cases := []struct {
		a, b Interval
		want float64
	}{
		{Interval{0, 9}, Interval{0, 9}, 1},
		{Interval{0, 9}, Interval{10, 19}, 0},
		{Interval{0, 9}, Interval{5, 14}, 5.0 / 15.0},
		{Interval{0, 4}, Interval{0, 9}, 0.5},
	}
	for _, c := range cases {
		if got := c.a.IoU(c.b); got != c.want {
			t.Errorf("IoU(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.IoU(c.a); got != c.want {
			t.Errorf("IoU symmetric (%v,%v) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestNewIntervalSetCanonicalises(t *testing.T) {
	s := NewIntervalSet(Interval{5, 7}, Interval{1, 2}, Interval{3, 4}, Interval{10, 12}, Interval{11, 15}, Interval{20, 19})
	want := []Interval{{1, 7}, {10, 15}}
	got := s.Intervals()
	if len(got) != len(want) {
		t.Fatalf("intervals = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intervals = %v, want %v", got, want)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.TotalLen() != 13 {
		t.Errorf("TotalLen = %d, want 13", s.TotalLen())
	}
	if s.NumIntervals() != 2 {
		t.Errorf("NumIntervals = %d, want 2", s.NumIntervals())
	}
}

func TestIntervalSetContains(t *testing.T) {
	s := NewIntervalSet(Interval{1, 3}, Interval{7, 9})
	for _, x := range []int{1, 2, 3, 7, 8, 9} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false", x)
		}
	}
	for _, x := range []int{0, 4, 5, 6, 10} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true", x)
		}
	}
	if (IntervalSet{}).Contains(0) {
		t.Error("empty set should contain nothing")
	}
}

func TestIntervalSetSpan(t *testing.T) {
	s := NewIntervalSet(Interval{4, 5}, Interval{9, 11})
	sp, ok := s.Span()
	if !ok || sp != (Interval{4, 11}) {
		t.Errorf("Span = %v,%v", sp, ok)
	}
	if _, ok := (IntervalSet{}).Span(); ok {
		t.Error("empty set should have no span")
	}
}

func TestIntersectSet(t *testing.T) {
	a := NewIntervalSet(Interval{0, 10}, Interval{20, 30})
	b := NewIntervalSet(Interval{5, 25})
	got := a.IntersectSet(b)
	want := NewIntervalSet(Interval{5, 10}, Interval{20, 25})
	if got.String() != want.String() {
		t.Errorf("IntersectSet = %v, want %v", got, want)
	}
	if !a.IntersectSet(IntervalSet{}).Empty() {
		t.Error("intersection with empty should be empty")
	}
	// Adjacent pieces from the right operand must merge back into one run.
	c := NewIntervalSet(Interval{0, 2}, Interval{4, 5})
	d := NewIntervalSet(Interval{0, 5})
	got = d.IntersectSet(c)
	if got.String() != c.String() {
		t.Errorf("IntersectSet with cover = %v, want %v", got, c)
	}
}

func TestIntersectAll(t *testing.T) {
	a := NewIntervalSet(Interval{0, 100})
	b := NewIntervalSet(Interval{10, 50}, Interval{60, 90})
	c := NewIntervalSet(Interval{40, 70})
	got := IntersectAll(a, b, c)
	want := NewIntervalSet(Interval{40, 50}, Interval{60, 70})
	if got.String() != want.String() {
		t.Errorf("IntersectAll = %v, want %v", got, want)
	}
	if !IntersectAll().Empty() {
		t.Error("IntersectAll() should be empty")
	}
	if got := IntersectAll(a); got.String() != a.String() {
		t.Errorf("IntersectAll(a) = %v, want %v", got, a)
	}
}

func TestSubtract(t *testing.T) {
	a := NewIntervalSet(Interval{0, 10})
	b := NewIntervalSet(Interval{3, 5}, Interval{8, 12})
	got := a.Subtract(b)
	want := NewIntervalSet(Interval{0, 2}, Interval{6, 7})
	if got.String() != want.String() {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
	if got := a.Subtract(IntervalSet{}); got.String() != a.String() {
		t.Errorf("Subtract empty = %v, want %v", got, a)
	}
	if got := a.Subtract(a); !got.Empty() {
		t.Errorf("Subtract self = %v, want empty", got)
	}
}

func TestClamp(t *testing.T) {
	a := NewIntervalSet(Interval{0, 10}, Interval{20, 30})
	got := a.Clamp(Interval{5, 25})
	want := NewIntervalSet(Interval{5, 10}, Interval{20, 25})
	if got.String() != want.String() {
		t.Errorf("Clamp = %v, want %v", got, want)
	}
}

func TestFromIndicatorAndBack(t *testing.T) {
	ind := []bool{false, true, true, false, true, false, false, true}
	s := FromIndicator(ind)
	want := NewIntervalSet(Interval{1, 2}, Interval{4, 4}, Interval{7, 7})
	if s.String() != want.String() {
		t.Errorf("FromIndicator = %v, want %v", s, want)
	}
	back := s.Indicator(len(ind))
	for i := range ind {
		if back[i] != ind[i] {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, back, ind)
		}
	}
	if !FromIndicator(nil).Empty() {
		t.Error("FromIndicator(nil) should be empty")
	}
	if got := FromIndicator([]bool{true, true}); got.String() != NewIntervalSet(Interval{0, 1}).String() {
		t.Errorf("all-true indicator = %v", got)
	}
}

func randomSet(r *rand.Rand, maxUnit int) IntervalSet {
	n := r.Intn(6)
	ivs := make([]Interval, n)
	for i := range ivs {
		a := r.Intn(maxUnit)
		b := a + r.Intn(10)
		ivs[i] = Interval{a, b}
	}
	return NewIntervalSet(ivs...)
}

// TestIntervalSetProperties cross-checks the sweep-based set algebra against
// a brute-force membership model on random inputs.
func TestIntervalSetProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const maxUnit = 60
	for trial := 0; trial < 500; trial++ {
		a, b := randomSet(r, maxUnit), randomSet(r, maxUnit)
		inter := a.IntersectSet(b)
		uni := a.Union(b)
		sub := a.Subtract(b)
		for _, s := range []IntervalSet{inter, uni, sub} {
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d: invalid result set: %v", trial, err)
			}
		}
		for x := 0; x < maxUnit+12; x++ {
			ina, inb := a.Contains(x), b.Contains(x)
			if inter.Contains(x) != (ina && inb) {
				t.Fatalf("trial %d: intersect membership wrong at %d (a=%v b=%v)", trial, x, a, b)
			}
			if uni.Contains(x) != (ina || inb) {
				t.Fatalf("trial %d: union membership wrong at %d (a=%v b=%v)", trial, x, a, b)
			}
			if sub.Contains(x) != (ina && !inb) {
				t.Fatalf("trial %d: subtract membership wrong at %d (a=%v b=%v)", trial, x, a, b)
			}
		}
	}
}
