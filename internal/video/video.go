// Package video models the structural decomposition of a video used
// throughout the engine: a video is a sequence of frames; a fixed number of
// consecutive frames forms a shot (the input unit of action recognition); a
// fixed number of consecutive shots forms a clip (the unit at which query
// predicates are decided); and a maximal run of consecutive positive clips
// forms a result sequence.
//
// The package also provides the interval algebra (union, intersection via an
// interval sweep, IoU) used both by the online sequence merger and by the
// offline engine when intersecting per-predicate positive-clip ranges.
package video

import "fmt"

// Geometry fixes the frame/shot/clip hierarchy of a video. Frames are the
// occurrence unit for object detection, shots for action recognition, and
// clips are the granularity at which query predicates are decided.
type Geometry struct {
	// FramesPerShot is the shot length in frames. Action recognisers in the
	// literature consume shots of 10-30 frames.
	FramesPerShot int
	// ShotsPerClip is the clip length in shots. The clip length is the main
	// tunable of the engine (evaluated in the paper's Figures 4 and 5).
	ShotsPerClip int
}

// DefaultGeometry mirrors the paper's running example: 10-frame shots and
// 5-shot clips, i.e. 50-frame clips.
var DefaultGeometry = Geometry{FramesPerShot: 10, ShotsPerClip: 5}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.FramesPerShot <= 0 {
		return fmt.Errorf("video: FramesPerShot must be positive, got %d", g.FramesPerShot)
	}
	if g.ShotsPerClip <= 0 {
		return fmt.Errorf("video: ShotsPerClip must be positive, got %d", g.ShotsPerClip)
	}
	return nil
}

// FramesPerClip returns the clip length in frames.
func (g Geometry) FramesPerClip() int { return g.FramesPerShot * g.ShotsPerClip }

// ShotOfFrame returns the index of the shot containing frame v.
func (g Geometry) ShotOfFrame(v int) int { return v / g.FramesPerShot }

// ClipOfFrame returns the index of the clip containing frame v.
func (g Geometry) ClipOfFrame(v int) int { return v / g.FramesPerClip() }

// ClipOfShot returns the index of the clip containing shot s.
func (g Geometry) ClipOfShot(s int) int { return s / g.ShotsPerClip }

// FrameRangeOfClip returns the inclusive frame interval covered by clip c.
func (g Geometry) FrameRangeOfClip(c int) Interval {
	fpc := g.FramesPerClip()
	return Interval{Start: c * fpc, End: (c+1)*fpc - 1}
}

// ShotRangeOfClip returns the inclusive shot interval covered by clip c.
func (g Geometry) ShotRangeOfClip(c int) Interval {
	return Interval{Start: c * g.ShotsPerClip, End: (c+1)*g.ShotsPerClip - 1}
}

// FrameRangeOfShot returns the inclusive frame interval covered by shot s.
func (g Geometry) FrameRangeOfShot(s int) Interval {
	return Interval{Start: s * g.FramesPerShot, End: (s+1)*g.FramesPerShot - 1}
}

// FrameRangeOfClips converts an inclusive clip interval to the inclusive
// frame interval it spans.
func (g Geometry) FrameRangeOfClips(clips Interval) Interval {
	fpc := g.FramesPerClip()
	return Interval{Start: clips.Start * fpc, End: (clips.End+1)*fpc - 1}
}

// NumShots returns the number of complete shots in a video of n frames.
func (g Geometry) NumShots(n int) int { return n / g.FramesPerShot }

// NumClips returns the number of complete clips in a video of n frames.
// Trailing frames that do not fill a clip are dropped, matching the paper's
// treatment of the video as a sequence of whole clips.
func (g Geometry) NumClips(n int) int { return n / g.FramesPerClip() }

// Meta identifies a video inside a repository.
type Meta struct {
	// ID is the repository-unique video identifier.
	ID string
	// NumFrames is the total number of frames.
	NumFrames int
	// FPS is frames per second, used only to report durations.
	FPS float64
	// Geometry is the shot/clip decomposition the video was ingested with.
	Geometry Geometry
}

// DurationSeconds reports the play length of the video.
func (m Meta) DurationSeconds() float64 {
	if m.FPS <= 0 {
		return 0
	}
	return float64(m.NumFrames) / m.FPS
}

// NumClips returns the number of complete clips in the video.
func (m Meta) NumClips() int { return m.Geometry.NumClips(m.NumFrames) }

// NumShots returns the number of complete shots in the video.
func (m Meta) NumShots() int { return m.Geometry.NumShots(m.NumFrames) }
