package video

import (
	"fmt"
	"sort"
	"strings"
)

// Interval is an inclusive range [Start, End] of unit indices (frames, shots
// or clips depending on context). The inclusive convention follows the
// paper's sequence notation (c_l, c_r).
type Interval struct {
	Start int
	End   int
}

// Len returns the number of units covered by the interval.
func (iv Interval) Len() int {
	if iv.End < iv.Start {
		return 0
	}
	return iv.End - iv.Start + 1
}

// Contains reports whether unit x lies inside the interval.
func (iv Interval) Contains(x int) bool { return iv.Start <= x && x <= iv.End }

// Overlaps reports whether the two intervals share at least one unit.
func (iv Interval) Overlaps(o Interval) bool { return iv.Start <= o.End && o.Start <= iv.End }

// Intersect returns the overlap of the two intervals and whether it is
// non-empty.
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	r := Interval{Start: max(iv.Start, o.Start), End: min(iv.End, o.End)}
	if r.End < r.Start {
		return Interval{}, false
	}
	return r, true
}

// IoU returns the intersection-over-union of two intervals, the overlap
// measure used to match result sequences against ground truth.
func (iv Interval) IoU(o Interval) float64 {
	inter, ok := iv.Intersect(o)
	if !ok {
		return 0
	}
	union := iv.Len() + o.Len() - inter.Len()
	return float64(inter.Len()) / float64(union)
}

// Adjacent reports whether o starts exactly where iv ends (or vice versa),
// with no gap, so that the two merge into one continuous run.
func (iv Interval) Adjacent(o Interval) bool {
	return iv.End+1 == o.Start || o.End+1 == iv.Start
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Start, iv.End) }

// IntervalSet is a canonical set of units represented as sorted,
// non-overlapping, non-adjacent inclusive intervals. The zero value is the
// empty set.
type IntervalSet struct {
	ivs []Interval
}

// NewIntervalSet builds a canonical set from arbitrary intervals: they are
// sorted, merged when overlapping or adjacent, and empty ones dropped.
func NewIntervalSet(ivs ...Interval) IntervalSet {
	var s IntervalSet
	work := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if iv.Len() > 0 {
			work = append(work, iv)
		}
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].Start != work[j].Start {
			return work[i].Start < work[j].Start
		}
		return work[i].End < work[j].End
	})
	for _, iv := range work {
		n := len(s.ivs)
		if n > 0 && (s.ivs[n-1].Overlaps(iv) || s.ivs[n-1].Adjacent(iv)) {
			if iv.End > s.ivs[n-1].End {
				s.ivs[n-1].End = iv.End
			}
			continue
		}
		s.ivs = append(s.ivs, iv)
	}
	return s
}

// Intervals returns the canonical intervals in increasing order. The caller
// must not mutate the returned slice.
func (s IntervalSet) Intervals() []Interval { return s.ivs }

// NumIntervals returns the number of maximal runs in the set.
func (s IntervalSet) NumIntervals() int { return len(s.ivs) }

// Empty reports whether the set contains no units.
func (s IntervalSet) Empty() bool { return len(s.ivs) == 0 }

// TotalLen returns the number of units in the set.
func (s IntervalSet) TotalLen() int {
	t := 0
	for _, iv := range s.ivs {
		t += iv.Len()
	}
	return t
}

// Contains reports whether unit x belongs to the set, by binary search.
func (s IntervalSet) Contains(x int) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End >= x })
	return i < len(s.ivs) && s.ivs[i].Contains(x)
}

// Span returns the smallest interval covering the whole set.
func (s IntervalSet) Span() (Interval, bool) {
	if s.Empty() {
		return Interval{}, false
	}
	return Interval{Start: s.ivs[0].Start, End: s.ivs[len(s.ivs)-1].End}, true
}

// Union returns the set union, merging adjacent runs.
func (s IntervalSet) Union(o IntervalSet) IntervalSet {
	all := make([]Interval, 0, len(s.ivs)+len(o.ivs))
	all = append(all, s.ivs...)
	all = append(all, o.ivs...)
	return NewIntervalSet(all...)
}

// IntersectSet implements the paper's ⊗ operator: the maximal runs of units
// belonging to both sets. It is a single linear sweep over the two sorted
// interval lists.
func (s IntervalSet) IntersectSet(o IntervalSet) IntervalSet {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		if iv, ok := s.ivs[i].Intersect(o.ivs[j]); ok {
			// Runs produced by intersecting canonical sets can be adjacent
			// (e.g. [0,5]∩([0,2] [3,5])), so merge through NewIntervalSet.
			out = append(out, iv)
		}
		if s.ivs[i].End < o.ivs[j].End {
			i++
		} else {
			j++
		}
	}
	return NewIntervalSet(out...)
}

// IntersectAll folds IntersectSet over all the given sets. With no operands
// it returns the empty set.
func IntersectAll(sets ...IntervalSet) IntervalSet {
	if len(sets) == 0 {
		return IntervalSet{}
	}
	acc := sets[0]
	for _, s := range sets[1:] {
		if acc.Empty() {
			return acc
		}
		acc = acc.IntersectSet(s)
	}
	return acc
}

// Subtract returns the units of s not in o.
func (s IntervalSet) Subtract(o IntervalSet) IntervalSet {
	var out []Interval
	j := 0
	for _, iv := range s.ivs {
		cur := iv
		for j < len(o.ivs) && o.ivs[j].End < cur.Start {
			j++
		}
		k := j
		for k < len(o.ivs) && o.ivs[k].Start <= cur.End {
			cut := o.ivs[k]
			if cut.Start > cur.Start {
				out = append(out, Interval{Start: cur.Start, End: cut.Start - 1})
			}
			if cut.End >= cur.End {
				cur = Interval{Start: 1, End: 0} // emptied
				break
			}
			cur.Start = cut.End + 1
			k++
		}
		if cur.Len() > 0 {
			out = append(out, cur)
		}
	}
	return NewIntervalSet(out...)
}

// Clamp restricts the set to the given bounds.
func (s IntervalSet) Clamp(bounds Interval) IntervalSet {
	var out []Interval
	for _, iv := range s.ivs {
		if r, ok := iv.Intersect(bounds); ok {
			out = append(out, r)
		}
	}
	return NewIntervalSet(out...)
}

// FromIndicator builds the canonical set of maximal runs where ind[i] is
// true; index i corresponds to unit i. This is the paper's merge step
// (Equation 4) applied to per-clip indicators.
func FromIndicator(ind []bool) IntervalSet {
	var out []Interval
	start := -1
	for i, b := range ind {
		switch {
		case b && start < 0:
			start = i
		case !b && start >= 0:
			out = append(out, Interval{Start: start, End: i - 1})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, Interval{Start: start, End: len(ind) - 1})
	}
	return IntervalSet{ivs: out}
}

// Indicator renders the set as a boolean vector over [0, n).
func (s IntervalSet) Indicator(n int) []bool {
	ind := make([]bool, n)
	for _, iv := range s.ivs {
		for i := max(0, iv.Start); i <= iv.End && i < n; i++ {
			ind[i] = true
		}
	}
	return ind
}

// Validate checks the canonical-form invariants; it is used by property
// tests.
func (s IntervalSet) Validate() error {
	for i, iv := range s.ivs {
		if iv.Len() <= 0 {
			return fmt.Errorf("video: empty interval %v at %d", iv, i)
		}
		if i > 0 && s.ivs[i-1].End+1 >= iv.Start {
			return fmt.Errorf("video: intervals %v and %v overlap or touch", s.ivs[i-1], iv)
		}
	}
	return nil
}

func (s IntervalSet) String() string {
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}
