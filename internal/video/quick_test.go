package video

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genSet draws a random canonical interval set for testing/quick.
func genSet(r *rand.Rand) IntervalSet {
	n := r.Intn(8)
	ivs := make([]Interval, n)
	for i := range ivs {
		a := r.Intn(80)
		ivs[i] = Interval{Start: a, End: a + r.Intn(12)}
	}
	return NewIntervalSet(ivs...)
}

// setValue adapts genSet to quick's generator interface.
type setValue struct{ S IntervalSet }

// Generate implements quick.Generator.
func (setValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(setValue{S: genSet(r)})
}

func TestQuickIntersectionCommutes(t *testing.T) {
	f := func(a, b setValue) bool {
		x := a.S.IntersectSet(b.S)
		y := b.S.IntersectSet(a.S)
		return x.String() == y.String() && x.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionCommutesAndAbsorbs(t *testing.T) {
	f := func(a, b setValue) bool {
		u := a.S.Union(b.S)
		if u.String() != b.S.Union(a.S).String() {
			return false
		}
		// a ⊆ a∪b and (a∪b)∩a = a.
		return u.IntersectSet(a.S).String() == a.S.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorganLike(t *testing.T) {
	// a \ b = a ∩ (universe \ b) over a bounded universe.
	universe := NewIntervalSet(Interval{Start: 0, End: 200})
	f := func(a, b setValue) bool {
		direct := a.S.Subtract(b.S)
		viaComplement := a.S.IntersectSet(universe.Subtract(b.S))
		return direct.Clamp(Interval{Start: 0, End: 200}).String() == viaComplement.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickIndicatorRoundTrip(t *testing.T) {
	f := func(v setValue) bool {
		const n = 120
		clamped := v.S.Clamp(Interval{Start: 0, End: n - 1})
		back := FromIndicator(clamped.Indicator(n))
		return back.String() == clamped.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectAllSubset(t *testing.T) {
	f := func(a, b, c setValue) bool {
		all := IntersectAll(a.S, b.S, c.S)
		for _, s := range []IntervalSet{a.S, b.S, c.S} {
			// all ⊆ s
			if all.Subtract(s).TotalLen() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickTotalLenConsistent(t *testing.T) {
	// |a| + |b| = |a∪b| + |a∩b|.
	f := func(a, b setValue) bool {
		return a.S.TotalLen()+b.S.TotalLen() ==
			a.S.Union(b.S).TotalLen()+a.S.IntersectSet(b.S).TotalLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
