// Package svqact's root benchmark suite regenerates every table and figure
// of the paper's evaluation as testing.B benchmarks (one per experiment,
// over the shared benchmark workspace) and adds microbenchmarks for the
// engine's core primitives. Run with
//
//	go test -bench=. -benchmem
//
// The per-experiment benchmarks report the wall time of one full experiment
// regeneration at the benchmark scale; cmd/experiments prints the actual
// result tables.
package svqact

import (
	"context"
	"sync"
	"testing"

	"svqact/internal/bench"
	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/kernel"
	"svqact/internal/rank"
	"svqact/internal/scanstat"
	"svqact/internal/store"
	"svqact/internal/synth"
	"svqact/internal/video"
)

var (
	wsOnce sync.Once
	ws     *bench.Workspace
)

func workspace() *bench.Workspace {
	wsOnce.Do(func() {
		ws = bench.NewWorkspace(bench.Options{Scale: 0.15, Seed: 42})
	})
	return ws
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e := bench.Find(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	w := workspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(w); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table and figure (see DESIGN.md's experiment
// index and EXPERIMENTS.md for the regenerated numbers).

func BenchmarkFig2_BackgroundProbability(b *testing.B) { runExperiment(b, "fig2") }
func BenchmarkFig3_F1AllQueries(b *testing.B)          { runExperiment(b, "fig3") }
func BenchmarkTable3_PredicateVariation(b *testing.B)  { runExperiment(b, "table3") }
func BenchmarkTable4_DetectionModels(b *testing.B)     { runExperiment(b, "table4") }
func BenchmarkTable5_NoiseElimination(b *testing.B)    { runExperiment(b, "table5") }
func BenchmarkFig4_ClipSizeSequences(b *testing.B)     { runExperiment(b, "fig4") }
func BenchmarkFig5_ClipSizeFrameF1(b *testing.B)       { runExperiment(b, "fig5") }
func BenchmarkRuntimeDecomposition(b *testing.B)       { runExperiment(b, "runtime") }
func BenchmarkTable6_CoffeeAndCigarettes(b *testing.B) { runExperiment(b, "table6") }
func BenchmarkTable7_YouTubeOffline(b *testing.B)      { runExperiment(b, "table7") }
func BenchmarkTable8_MovieSpeedup(b *testing.B)        { runExperiment(b, "table8") }
func BenchmarkOfflineAccuracy(b *testing.B)            { runExperiment(b, "accuracy") }

// Ablation benchmarks (design choices called out in DESIGN.md).

func BenchmarkAblationPredicateOrder(b *testing.B)  { runExperiment(b, "ablation-order") }
func BenchmarkAblationShortCircuit(b *testing.B)    { runExperiment(b, "ablation-shortcircuit") }
func BenchmarkAblationHorizon(b *testing.B)         { runExperiment(b, "ablation-horizon") }
func BenchmarkDrift(b *testing.B)                   { runExperiment(b, "drift") }
func BenchmarkExtendedQueries(b *testing.B)         { runExperiment(b, "extended") }
func BenchmarkScaling_FleetThroughput(b *testing.B) { runExperiment(b, "scaling") }

// Microbenchmarks of the engine's primitives.

func BenchmarkScanStatCriticalValue(b *testing.B) {
	ps := []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Vary p slightly so the process-wide memo does not trivialise the
		// benchmark.
		p := ps[i%len(ps)] * (1 + float64(i%97)/1e4)
		scanstat.CriticalValue(50, p, 20, 0.05)
	}
}

func BenchmarkScanStatTail(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scanstat.Tail(4+i%4, 50, 0.02, 20)
	}
}

func BenchmarkKernelTick(b *testing.B) {
	est, err := kernel.NewEstimator(2500, 1e-4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est.TickN(50, i%5)
	}
}

func BenchmarkIntervalIntersect(b *testing.B) {
	mk := func(stride int) video.IntervalSet {
		var ivs []video.Interval
		for s := 0; s < 100_000; s += stride {
			ivs = append(ivs, video.Interval{Start: s, End: s + stride/2})
		}
		return video.NewIntervalSet(ivs...)
	}
	a, c := mk(37), mk(53)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.IntersectSet(c)
	}
}

func benchVideo(b *testing.B) *synth.Video {
	b.Helper()
	v, err := synth.Generate(synth.Script{
		ID: "bench", Frames: 30_000, FPS: 10, Geometry: video.DefaultGeometry, Seed: 5,
		Actions: []synth.ActionSpec{{Name: "jumping", MeanGapShots: 120, MeanDurShots: 30}},
		Objects: []synth.ObjectSpec{
			{Name: "human", MeanDurFrames: 300, CorrelatedWith: "jumping", CorrelationProb: 0.95},
			{Name: "car", MeanGapFrames: 3000, MeanDurFrames: 400},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return v
}

func BenchmarkDetectorFrameScore(b *testing.B) {
	v := benchVideo(b)
	d := detect.NewObjectDetector(detect.MaskRCNN, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.FrameScore(v, "car", i%v.NumFrames())
	}
}

func BenchmarkSVAQDClip(b *testing.B) {
	v := benchVideo(b)
	models := detect.NewModels(detect.NewObjectDetector(detect.MaskRCNN, 1), detect.NewActionRecognizer(detect.I3D, 1))
	eng, err := core.NewSVAQD(models, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	q := core.Query{Objects: []string{"car"}, Action: "jumping"}
	b.ResetTimer()
	for i := 0; i < b.N; {
		run, err := eng.NewRun(context.Background(), v, q)
		if err != nil {
			b.Fatal(err)
		}
		for run.Step() && i < b.N {
			i++
		}
	}
}

func BenchmarkIngest(b *testing.B) {
	v := benchVideo(b)
	models := detect.NewModels(detect.NewObjectDetector(detect.MaskRCNN, 1), detect.NewActionRecognizer(detect.I3D, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rank.Ingest(context.Background(), v, models, rank.PaperScoring(), rank.DefaultIngestConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreRandomAccess(b *testing.B) {
	entries := make([]store.Entry, 10_000)
	for i := range entries {
		entries[i] = store.Entry{Clip: i, Score: float64(i%97) + 0.5}
	}
	dir := b.TempDir()
	if err := store.WriteTable(dir+"/t.tbl", "t", entries); err != nil {
		b.Fatal(err)
	}
	t, err := store.OpenDiskTable(dir + "/t.tbl")
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.ScoreOf(i % 10_000)
	}
}

func BenchmarkRVAQTopK(b *testing.B) {
	w := workspace()
	ix, err := w.MovieIndex("coffee_and_cigarettes")
	if err != nil {
		b.Fatal(err)
	}
	spec := w.Movies().Query("coffee_and_cigarettes")
	q := core.Query{Objects: spec.Objects, Action: spec.Action}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rank.RVAQ(context.Background(), ix, q, 5, rank.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRVAQCNFTopK(b *testing.B) {
	w := workspace()
	ix, err := w.MovieIndex("titanic")
	if err != nil {
		b.Fatal(err)
	}
	q := core.CNF{Clauses: []core.Clause{
		{Atoms: []core.Atom{core.ActionAtom("kissing"), core.ActionAtom("talking")}},
		{Atoms: []core.Atom{core.ObjectAtom("person")}},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rank.RVAQCNF(context.Background(), ix, q, 5, rank.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
