// Quickstart: generate a synthetic video, run an online action query with
// SVAQD, and print the result sequences alongside the ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/obs"
	"svqact/internal/synth"
	"svqact/internal/video"
)

func main() {
	// A ten-minute synthetic video: a "jumping" action occurring now and
	// then, a correlated "human", and an independent "car".
	v, err := synth.Generate(synth.Script{
		ID:       "quickstart",
		Frames:   6_000, // 10 minutes at 10 fps
		FPS:      10,
		Geometry: video.DefaultGeometry,
		Seed:     1,
		Actions: []synth.ActionSpec{
			{Name: "jumping", MeanGapShots: 120, MeanDurShots: 30},
		},
		Objects: []synth.ObjectSpec{
			{Name: "human", MeanDurFrames: 350, CorrelatedWith: "jumping", CorrelationProb: 0.95},
			{Name: "car", MeanGapFrames: 1500, MeanDurFrames: 250},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Simulated detection models with calibrated noise (Mask R-CNN for
	// objects, I3D for actions).
	models := detect.NewModels(
		detect.NewObjectDetector(detect.MaskRCNN, 7),
		detect.NewActionRecognizer(detect.I3D, 7),
	)

	// The query: a human jumping while a car is visible.
	q := core.Query{Objects: []string{"human", "car"}, Action: "jumping"}

	eng, err := core.NewSVAQD(models, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	lat := obs.NewHistogram(nil)
	start := time.Now()
	res, err := eng.Run(context.Background(), v, q)
	if err != nil {
		log.Fatal(err)
	}
	lat.ObserveDuration(time.Since(start))

	g := v.Geometry()
	fmt.Printf("query %s over %s (%d clips)\n\n", q, v.ID(), res.NumClips)
	fmt.Printf("result sequences (%d):\n", res.Sequences.NumIntervals())
	for _, iv := range res.Sequences.Intervals() {
		fr := g.FrameRangeOfClips(iv)
		fmt.Printf("  clips %3d..%-3d  (%5.1fs .. %5.1fs)\n",
			iv.Start, iv.End, float64(fr.Start)/v.Meta.FPS, float64(fr.End+1)/v.Meta.FPS)
	}

	truth := v.TruthClips(synth.QuerySpec{Action: q.Action, Objects: q.Objects}, 0)
	fmt.Printf("\nground truth (%d):\n", truth.NumIntervals())
	for _, iv := range truth.Intervals() {
		fmt.Printf("  clips %3d..%-3d\n", iv.Start, iv.End)
	}

	fmt.Println("\nper-predicate state after the stream:")
	for _, ps := range res.Predicates {
		fmt.Printf("  %-10s background=%.2e  k_crit=%d\n", ps.Name, ps.Background, ps.Critical)
	}

	fmt.Printf("\nquery latency: %s\n", lat.Summary())
}
