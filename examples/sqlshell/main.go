// Sqlshell: an interactive loop for the paper's SQL-like dialect over the
// YouTube benchmark. Each statement is parsed, planned, and executed —
// streaming (SVAQD) or top-k (RVAQ) depending on whether it ranks.
//
//	go run ./examples/sqlshell
//	svq> SELECT MERGE(clipID) AS s FROM (PROCESS q2 PRODUCE clipID,
//	     obj USING ObjectDetector, act USING ActionRecognizer)
//	     WHERE act='blowing_leaves' AND obj.include('car')
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/rank"
	"svqact/internal/sqlq"
	"svqact/internal/synth"
)

func main() {
	fmt.Println("loading youtube benchmark (scale 0.15)...")
	dataset := synth.YouTube(synth.Options{Scale: 0.15, Seed: 42})
	models := detect.NewModels(
		detect.NewObjectDetector(detect.MaskRCNN, 42),
		detect.NewActionRecognizer(detect.I3D, 42),
	)
	fmt.Println("sources: q1..q12 (each the concatenated videos of one query set)")
	fmt.Println("end statements with a blank line; ctrl-D exits")

	scanner := bufio.NewScanner(os.Stdin)
	var buf strings.Builder
	fmt.Print("svq> ")
	for scanner.Scan() {
		line := scanner.Text()
		if strings.TrimSpace(line) != "" {
			buf.WriteString(line)
			buf.WriteByte('\n')
			fmt.Print("...> ")
			continue
		}
		stmt := strings.TrimSpace(buf.String())
		buf.Reset()
		if stmt != "" {
			if err := execute(stmt, dataset, models); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("svq> ")
	}
	fmt.Println()
}

func execute(stmt string, dataset *synth.Dataset, models detect.Models) error {
	st, err := sqlq.Parse(stmt)
	if err != nil {
		return err
	}
	plan, err := st.Plan()
	if err != nil {
		return err
	}
	spec := dataset.Query(plan.Source)
	if spec == nil {
		return fmt.Errorf("unknown source %q (use q1..q12)", plan.Source)
	}
	var vids []*synth.Video
	for _, v := range dataset.Videos {
		if !v.ActionPresence(spec.Action).Empty() {
			vids = append(vids, v)
		}
	}
	stream, err := synth.NewConcat(plan.Source, vids)
	if err != nil {
		return err
	}

	if plan.Online {
		eng, err := core.NewSVAQD(models, core.DefaultConfig())
		if err != nil {
			return err
		}
		if plan.Extended {
			res, err := eng.RunCNF(context.Background(), stream, plan.CNF)
			if err != nil {
				return err
			}
			fmt.Printf("extended query %s: %d result sequences over %d clips:\n",
				plan.CNF, res.Sequences.NumIntervals(), res.NumClips)
			for _, iv := range res.Sequences.Intervals() {
				fmt.Printf("  clips %4d..%-4d\n", iv.Start, iv.End)
			}
			return nil
		}
		res, err := eng.Run(context.Background(), stream, plan.Query)
		if err != nil {
			return err
		}
		fmt.Printf("%d result sequences over %d clips:\n", res.Sequences.NumIntervals(), res.NumClips)
		for _, iv := range res.Sequences.Intervals() {
			fmt.Printf("  clips %4d..%-4d\n", iv.Start, iv.End)
		}
		return nil
	}

	fmt.Printf("ingesting %s for offline processing...\n", plan.Source)
	var tvs []detect.TruthVideo
	for _, v := range vids {
		tvs = append(tvs, v)
	}
	ix, err := rank.IngestAll(context.Background(), plan.Source, tvs, models, rank.PaperScoring(), rank.DefaultIngestConfig())
	if err != nil {
		return err
	}
	res, err := rank.RVAQ(context.Background(), ix, plan.Query, plan.K, rank.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("top-%d of %d candidates (%d random accesses):\n", plan.K, res.Candidates, res.Stats.Random)
	for i, sr := range res.Sequences {
		vid, local := ix.Resolve(sr.Seq.Start)
		fmt.Printf("  #%d score %9.2f  %s clip %d (global %d..%d)\n",
			i+1, sr.Score(), vid, local, sr.Seq.Start, sr.Seq.End)
	}
	return nil
}

var _ = log.Fatal
