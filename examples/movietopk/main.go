// Movietopk: the offline pipeline end to end — ingest a movie-length video
// into an on-disk repository (clip score tables + individual sequences),
// reload it, and answer a ranked top-k action query with RVAQ, comparing its
// access costs against the exhaustive Pq-Traverse baseline.
//
//	go run ./examples/movietopk
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"time"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/obs"
	"svqact/internal/rank"
	"svqact/internal/synth"
)

func main() {
	// Titanic at one-quarter scale: a ~48-minute video with sparse kissing
	// scenes and partially correlated objects.
	movies := synth.Movies(synth.Options{Scale: 0.25, Seed: 42})
	v := movies.Video("titanic")
	spec := movies.Query("titanic")

	models := detect.NewModels(
		detect.NewObjectDetector(detect.MaskRCNN, 42),
		detect.NewActionRecognizer(detect.I3D, 42),
	)

	// Ingestion phase (§4.2): query-independent, one pass over the video.
	fmt.Printf("ingesting %s (%d frames, %d clips)...\n", v.ID(), v.NumFrames(), v.Meta.NumClips())
	ix, err := rank.Ingest(context.Background(), v, models, rank.PaperScoring(), rank.DefaultIngestConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d object types, %d action types\n", len(ix.Objects), len(ix.Actions))

	// Persist and reload: queries run against the on-disk repository.
	dir, err := os.MkdirTemp("", "svqact-repo-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	repo := filepath.Join(dir, v.ID())
	if err := rank.Save(repo, ix); err != nil {
		log.Fatal(err)
	}
	loaded, err := rank.Load(repo)
	if err != nil {
		log.Fatal(err)
	}
	defer loaded.Close()
	fmt.Printf("repository saved to %s and reloaded\n\n", repo)

	q := core.Query{Objects: spec.Objects, Action: spec.Action}
	const k = 5
	rvaqLat := obs.NewHistogram(nil)
	start := time.Now()
	res, err := rank.RVAQ(context.Background(), loaded, q, k, rank.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rvaqLat.ObserveDuration(time.Since(start))
	fmt.Printf("RVAQ top-%d for %s (%d candidate sequences):\n", k, q, res.Candidates)
	for i, sr := range res.Sequences {
		fr := v.Geometry().FrameRangeOfClips(sr.Seq)
		fmt.Printf("  #%d  score %9.2f  clips %4d..%-4d  (%.1f .. %.1f min)\n",
			i+1, sr.Score(), sr.Seq.Start, sr.Seq.End,
			float64(fr.Start)/v.Meta.FPS/60, float64(fr.End+1)/v.Meta.FPS/60)
	}

	travLat := obs.NewHistogram(nil)
	start = time.Now()
	trav, err := rank.PqTraverse(context.Background(), loaded, q, k, rank.Options{})
	if err != nil {
		log.Fatal(err)
	}
	travLat.ObserveDuration(time.Since(start))
	fmt.Printf("\naccess costs:      random   sorted   clips scored\n")
	fmt.Printf("  RVAQ         %9d %8d %14d\n", res.Stats.Random, res.Stats.Sorted, res.ClipsScored)
	fmt.Printf("  Pq-Traverse  %9d %8d %14d\n", trav.Stats.Random, trav.Stats.Sorted, trav.ClipsScored)
	fmt.Printf("\nquery latency:\n")
	fmt.Printf("  RVAQ         %s\n", rvaqLat.Summary())
	fmt.Printf("  Pq-Traverse  %s\n", travLat.Summary())
}
