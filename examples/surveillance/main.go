// Surveillance: the paper's motivating example for SVAQD (§3.3) — a camera
// at a crossroad whose vehicle traffic peaks at certain times of day, so the
// background detection probability is non-stationary. A fixed p0 (SVAQ) is
// wrong during the peaks or wrong between them; SVAQD tracks the rate and
// adjusts its critical values.
//
//	go run ./examples/surveillance
package main

import (
	"context"
	"fmt"
	"log"

	"time"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/metrics"
	"svqact/internal/obs"
	"svqact/internal/synth"
	"svqact/internal/video"
)

func main() {
	// One hour of footage. Cars pass continuously with 6x traffic during
	// recurring rush windows; the queried event is a person running while a
	// car is in view.
	const frames = 36_000 // 1 hour at 10 fps
	v, err := synth.Generate(synth.Script{
		ID:       "crossroad",
		Frames:   frames,
		FPS:      10,
		Geometry: video.DefaultGeometry,
		Seed:     11,
		Actions: []synth.ActionSpec{
			{Name: "running", MeanGapShots: 180, MeanDurShots: 25},
		},
		Objects: []synth.ObjectSpec{
			{
				Name:          "car",
				MeanGapFrames: 1800,
				MeanDurFrames: 120,
				// Traffic peaks: every 20 minutes, 6 minutes of 6x rate.
				Rate: synth.PeakRate(12_000, 3_600, 6),
			},
			{Name: "person", MeanDurFrames: 300, CorrelatedWith: "running", CorrelationProb: 0.95},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	models := detect.NewModels(
		detect.NewObjectDetector(detect.YOLOv3, 3), // fast edge detector
		detect.NewActionRecognizer(detect.I3D, 3),
	)
	q := core.Query{Objects: []string{"person", "car"}, Action: "running"}
	truth := v.TruthClips(synth.QuerySpec{Action: q.Action, Objects: q.Objects}, 0)

	fmt.Printf("query %s over one hour of drifting traffic\n\n", q)
	for _, mk := range []struct {
		name string
		make func(detect.Models, core.Config) (*core.Engine, error)
	}{
		{"SVAQ (static p0=1e-4)", core.NewSVAQ},
		{"SVAQD (adaptive)", core.NewSVAQD},
	} {
		eng, err := mk.make(models, core.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		lat := obs.NewHistogram(nil)
		start := time.Now()
		res, err := eng.Run(context.Background(), v, q)
		if err != nil {
			log.Fatal(err)
		}
		lat.ObserveDuration(time.Since(start))
		c := metrics.MatchSequences(res.Sequences, truth, metrics.DefaultIoU)
		fmt.Printf("%-24s sequences=%-3d precision=%.2f recall=%.2f F1=%.2f\n",
			mk.name, res.Sequences.NumIntervals(), c.Precision(), c.Recall(), c.F1())
		car := res.Predicate("car")
		fmt.Printf("%24s car background estimate: %.4f (k_crit=%d)\n",
			"", car.Background, car.Critical)
		fmt.Printf("%24s latency: %s\n", "", lat.Summary())
	}

	// Show SVAQD's background estimate following the traffic waves.
	eng, _ := core.NewSVAQD(models, core.DefaultConfig())
	run, err := eng.NewRun(context.Background(), v, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSVAQD car-background trajectory (one sample per 2 minutes):")
	step := 0
	for run.Step() {
		step++
		if step%24 == 0 { // 24 clips = 2 minutes
			car := run.Result().Predicate("car")
			bar := int(car.Background * 400)
			if bar > 60 {
				bar = 60
			}
			fmt.Printf("  t=%4.1fmin  p=%.4f %s\n",
				float64(step)*50/10/60, car.Background, stars(bar))
		}
	}
	_ = video.DefaultGeometry
}

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '*'
	}
	return string(s)
}
