// Extended: the query extensions of the paper's footnotes 2-4 — spatial
// relationships between objects, multiple actions, and disjunctions — run
// through the engine's CNF path.
//
//	go run ./examples/extended
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/obs"
	"svqact/internal/synth"
	"svqact/internal/video"
)

func main() {
	v, err := synth.Generate(synth.Script{
		ID: "park", Frames: 36_000, FPS: 10, Geometry: video.DefaultGeometry, Seed: 7,
		Actions: []synth.ActionSpec{
			{Name: "jumping", MeanGapShots: 120, MeanDurShots: 30},
			{Name: "dancing", MeanGapShots: 160, MeanDurShots: 25},
		},
		Objects: []synth.ObjectSpec{
			{Name: "human", MeanDurFrames: 350, CorrelatedWith: "jumping", CorrelationProb: 0.9},
			{Name: "dog", MeanGapFrames: 2200, MeanDurFrames: 400},
			{Name: "car", MeanGapFrames: 2600, MeanDurFrames: 300},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	models := detect.NewModels(
		detect.NewObjectDetector(detect.MaskRCNN, 7),
		detect.NewActionRecognizer(detect.I3D, 7),
	)
	eng, err := core.NewSVAQD(models, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	queries := []core.CNF{
		// Disjunction of actions (footnote 4): either activity qualifies.
		{Clauses: []core.Clause{
			{Atoms: []core.Atom{core.ActionAtom("jumping"), core.ActionAtom("dancing")}},
			{Atoms: []core.Atom{core.ObjectAtom("human")}},
		}},
		// Conjunction of actions (footnote 3): both at once.
		{Clauses: []core.Clause{
			{Atoms: []core.Atom{core.ActionAtom("jumping")}},
			{Atoms: []core.Atom{core.ActionAtom("dancing")}},
		}},
		// Spatial relationship (footnote 2): someone jumping near a dog.
		{Clauses: []core.Clause{
			{Atoms: []core.Atom{core.ActionAtom("jumping")}},
			{Atoms: []core.Atom{core.RelationAtom(detect.Near, "human", "dog")}},
		}},
	}
	lat := obs.NewHistogram(nil)
	for _, q := range queries {
		start := time.Now()
		res, err := eng.RunCNF(context.Background(), v, q)
		if err != nil {
			log.Fatal(err)
		}
		lat.ObserveDuration(time.Since(start))
		fmt.Printf("query: %s\n", q)
		if res.Sequences.Empty() {
			fmt.Println("  (no result sequences)")
		}
		for _, iv := range res.Sequences.Intervals() {
			fr := v.Geometry().FrameRangeOfClips(iv)
			fmt.Printf("  clips %3d..%-3d  (%5.1fs .. %5.1fs)\n",
				iv.Start, iv.End, float64(fr.Start)/v.Meta.FPS, float64(fr.End+1)/v.Meta.FPS)
		}
		for _, a := range res.Atoms {
			fmt.Printf("  atom %-20s k_crit=%d positive clips=%d\n",
				a.Name, a.Critical, a.Clips.TotalLen())
		}
		fmt.Println()
	}
	fmt.Printf("CNF query latency: %s\n", lat.Summary())
}
