// Command experiments regenerates every table and figure of the paper's
// evaluation (§5) against the synthetic benchmark, printing the results in
// the layout recorded in EXPERIMENTS.md.
//
//	experiments                 # run everything at the default scale
//	experiments -run fig2       # one experiment
//	experiments -scale 1 -v     # paper-scale workload with progress logging
//	experiments -bench-json BENCH_scaling.json   # machine-readable fleet-scaling report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"svqact/internal/bench"
)

func main() {
	var (
		run       = flag.String("run", "", "comma-separated experiment ids (empty = all)")
		scale     = flag.Float64("scale", 0.25, "dataset scale relative to the paper's video volumes")
		seed      = flag.Int64("seed", 42, "dataset and model seed")
		workers   = flag.Int("workers", 0, "videos ingested/evaluated concurrently (<= 0 = GOMAXPROCS)")
		benchJSON = flag.String("bench-json", "", "append the machine-readable fleet-scaling report to this series file")
		benchGate = flag.Float64("bench-gate", 0, "fail when peak throughput drops more than this percent vs the previous -bench-json entry (0 disables)")
		verbose   = flag.Bool("v", false, "log progress to stderr")
		list      = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-22s %s\n", e.ID, e.Desc)
		}
		return
	}

	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	w := bench.NewWorkspace(bench.Options{Scale: *scale, Seed: *seed, Workers: *workers, Log: log})

	if *benchJSON != "" && *run == "" {
		// -bench-json alone means "just produce the scaling report".
		*run = "scaling"
	}

	var selected []bench.Experiment
	if *run == "" {
		selected = bench.Experiments
	} else {
		for _, id := range strings.Split(*run, ",") {
			e := bench.Find(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, *e)
		}
	}

	fmt.Printf("SVQ-ACT experiment suite — scale %.2f, seed %d\n", *scale, *seed)
	fmt.Printf("=====================================================\n\n")
	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("## %s — %s (%v)\n\n", e.ID, e.Desc, time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			fmt.Println(t.Format())
		}
	}

	if *benchJSON != "" {
		rep, err := w.Scaling()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: scaling report: %v\n", err)
			os.Exit(1)
		}
		series, err := bench.AppendScalingJSON(*benchJSON, rep, gitRev())
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("appended scaling report to %s (%d entries)\n", *benchJSON, len(series))
		if *benchGate > 0 {
			msg, err := bench.CheckScalingRegression(series, *benchGate)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("bench gate: %s\n", msg)
		}
	}
}

// gitRev stamps series entries with the current revision; experiments must
// keep working outside a git checkout, so failures degrade to "unknown".
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
