// Command serve runs the HTTP query API: POST statements of the SQL-like
// dialect to /query and get result sequences as JSON.
//
//	serve -addr :8080 -scale 0.25
//	curl -s localhost:8080/sources
//	curl -s -X POST localhost:8080/query -d '{"sql":
//	  "SELECT MERGE(clipID) AS s FROM (PROCESS q2 PRODUCE clipID)
//	   WHERE act='"'"'blowing_leaves'"'"' AND obj.include('"'"'car'"'"')"}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"svqact/internal/server"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		scale = flag.Float64("scale", 0.25, "dataset scale relative to the paper")
		seed  = flag.Int64("seed", 42, "dataset and model seed")
	)
	flag.Parse()
	srv := server.New(server.Config{Scale: *scale, Seed: *seed})
	fmt.Printf("svq-act query server listening on %s (scale %.2f)\n", *addr, *scale)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
