// Command serve runs the HTTP query API: POST statements of the SQL-like
// dialect to /query and get result sequences as JSON. POST the same online
// statements to /query/batch to evaluate the query-set source as a parallel
// fleet, one result per component video (-workers bounds the per-batch
// concurrency).
//
//	serve -addr :8080 -scale 0.25
//	curl -s localhost:8080/sources
//	curl -s -X POST localhost:8080/query -d '{"sql":
//	  "SELECT MERGE(clipID) AS s FROM (PROCESS q2 PRODUCE clipID)
//	   WHERE act='"'"'blowing_leaves'"'"' AND obj.include('"'"'car'"'"')"}'
//
// The process installs the hardened serving stack: listener-level timeouts,
// per-query deadlines and admission control (see internal/server), and a
// graceful SIGTERM/SIGINT shutdown that drains in-flight queries before
// exiting. Operational state is observable at /healthz (admission JSON),
// /metrics (Prometheus text format) and, with -pprof, /debug/pprof/.
// Logs are structured JSON lines on stderr (log/slog).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"svqact/internal/detect"
	"svqact/internal/obs"
	"svqact/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		scale     = flag.Float64("scale", 0.25, "dataset scale relative to the paper")
		seed      = flag.Int64("seed", 42, "dataset and model seed")
		timeout   = flag.Duration("query-timeout", 30*time.Second, "per-query execution deadline")
		conc      = flag.Int("max-concurrent", 8, "queries executing at once")
		queue     = flag.Int("queue-depth", 16, "requests allowed to wait for a slot")
		wait      = flag.Duration("queue-wait", 2*time.Second, "max wait for an execution slot")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight queries on shutdown")
		workers   = flag.Int("workers", 0, "videos evaluated concurrently per /query/batch fleet (<= 0 = GOMAXPROCS)")
		repoDir   = flag.String("repo", "", "serve offline (RVAQ) queries from this saved repository (built with cmd/ingest); SIGHUP or POST /repo/reload picks up new generations")
		cascade   = flag.Bool("cascade", false, "run the detectors as tiered cascades (distilled cheap tier in front of each model; identical results, lower cost)")
		infBudget = flag.Duration("budget", 0, "default per-query inference budget (simulated model time); 0 means unlimited. A request's budget_ms overrides it")
		shard     = flag.String("shard-name", "", "serve as one shard of a cluster: answers carry X-SVQ-Shard and per-shard truncation bounds for the coordinator (see cmd/coordinator)")

		faultTransient = flag.Float64("fault-transient", 0, "injected transient detector failure rate [0,1)")
		faultPermanent = flag.Float64("fault-permanent", 0, "injected permanent detector failure rate [0,1)")
		faultSpike     = flag.Float64("fault-spike", 0, "injected latency spike rate [0,1)")
		faultDelay     = flag.Duration("fault-spike-delay", 5*time.Millisecond, "injected latency spike duration")
		retries        = flag.Int("detect-retries", 3, "attempts per detector invocation")
		budget         = flag.Float64("failure-budget", 0.25, "max fraction of clips flagged before a query degrades")

		traceCap    = flag.Int("trace-capacity", 256, "retained traces kept in memory for /debug/traces")
		traceSample = flag.Int("trace-sample", 16, "keep 1 in N healthy fast query traces (errors, degraded and tail-latency traces are always kept; < 0 disables sampling)")

		withPprof = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	cfg := server.Config{
		Scale:           *scale,
		Seed:            *seed,
		QueryTimeout:    *timeout,
		MaxConcurrent:   *conc,
		QueueDepth:      *queue,
		QueueWait:       *wait,
		Retry:           detect.RetryConfig{Attempts: *retries},
		FailureBudget:   *budget,
		Workers:         *workers,
		RepoDir:         *repoDir,
		Cascade:         *cascade,
		InferenceBudget: *infBudget,
		ShardName:       *shard,
		Logger:          logger,
		Traces:          obs.NewTraceStore(obs.TraceStoreConfig{Capacity: *traceCap, SampleEvery: *traceSample}),
	}
	if *faultTransient > 0 || *faultPermanent > 0 || *faultSpike > 0 {
		fc := &detect.FaultConfig{
			TransientRate: *faultTransient,
			PermanentRate: *faultPermanent,
			SpikeRate:     *faultSpike,
			SpikeDelay:    *faultDelay,
			Seed:          *seed,
		}
		if err := fc.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(2)
		}
		cfg.Fault = fc
		logger.Info("fault injection on",
			"transient", *faultTransient, "permanent", *faultPermanent,
			"spike", *faultSpike, "spike_delay", faultDelay.String())
	}
	srv := server.New(cfg)
	if *repoDir != "" {
		// The initial load must succeed — serving from a repository that
		// never loaded would fail every offline query. Later reloads
		// (SIGHUP, /repo/reload) are allowed to fail: the loaded
		// generation keeps serving.
		if err := srv.Reload(); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := srv.Reload(); err != nil {
					logger.Warn("SIGHUP reload failed; previous repository keeps serving", "error", err.Error())
				}
			}
		}()
	}

	handler := srv.Handler()
	if *withPprof {
		// Compose pprof onto an outer mux so the server's handler keeps
		// owning every other route (including its recovery middleware).
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	logger.Info("svq-act query server listening",
		"addr", ln.Addr().String(), "scale", *scale)

	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		// Writes must outlast the slowest admitted query plus queue wait.
		WriteTimeout: *timeout + *wait + 10*time.Second,
		IdleTimeout:  60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		logger.Info("shutting down: draining in-flight queries", "max_wait", drain.String())
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			logger.Error("drain incomplete", "error", err.Error())
			_ = hs.Close()
			os.Exit(1)
		}
		logger.Info("shutdown complete")
	}
}
