// Command coordinator fronts a sharded SVQ-ACT cluster: it scatters ranked
// queries over shard replica sets (cmd/serve -shard-name processes), merges
// the per-shard top-k with RVAQ's bounds as a distributed threshold, and
// degrades gracefully when replicas or whole shards are lost.
//
//	coordinator -addr :8090 \
//	  -shard s0=http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	  -shard s1=http://127.0.0.1:8083
//
// POST /query takes {"sql": "..."} and POST /query/batch takes
// {"queries": ["...", ...]}; every answer carries a shards
// {ok, degraded, failed} partition. Replica failover, retries with
// deterministic backoff jitter, optional hedged requests, and per-replica
// circuit breakers are internal/cluster's; /healthz, /shards and /metrics
// expose the cluster state. An admission gate (-admit-concurrent,
// -admit-queue, -admit-wait) sheds excess load with 429 + Retry-After
// before the shards saturate, and POST /rollout walks shard replica sets
// through a health-gated rolling generation swap (`svq rollout` drives
// it).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"svqact/internal/cluster"
	"svqact/internal/obs"
)

// shardFlags collects repeatable -shard name=url1,url2 declarations.
type shardFlags []cluster.ShardSpec

func (s *shardFlags) String() string { return fmt.Sprint(len(*s), " shards") }

func (s *shardFlags) Set(v string) error {
	name, urls, ok := strings.Cut(v, "=")
	if !ok || name == "" || urls == "" {
		return fmt.Errorf("want name=url1,url2,..., got %q", v)
	}
	spec := cluster.ShardSpec{Name: name}
	for i, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u == "" {
			return fmt.Errorf("shard %s: empty replica URL", name)
		}
		spec.Replicas = append(spec.Replicas,
			cluster.NewHTTPBackend(fmt.Sprintf("%s-r%d", name, i), u, nil))
	}
	*s = append(*s, spec)
	return nil
}

func main() {
	var shards shardFlags
	var (
		addr     = flag.String("addr", ":8090", "listen address")
		qTimeout = flag.Duration("query-timeout", 30*time.Second, "whole scatter-gather deadline (all refinement rounds)")
		sTimeout = flag.Duration("shard-timeout", 0, "per-shard attempt-set deadline (0 = query-timeout)")
		attempts = flag.Int("attempts-per-replica", 2, "retry budget per replica per round")
		backoff  = flag.Duration("base-backoff", 20*time.Millisecond, "first retry backoff (doubles per attempt, deterministic jitter)")
		maxBack  = flag.Duration("max-backoff", time.Second, "retry backoff ceiling")
		hedge    = flag.Duration("hedge-after", 0, "race a second replica when an attempt is slower than this (0 disables hedging)")
		hedgeQ   = flag.Float64("hedge-quantile", 0.95, "observed shard latency quantile that can raise the hedge delay")
		seed     = flag.Uint64("seed", 42, "seed of the deterministic backoff jitter")
		brkN     = flag.Int("breaker-threshold", 5, "consecutive replica failures that open its circuit breaker")
		brkCool  = flag.Duration("breaker-cooloff", 5*time.Second, "open-breaker cooloff before a half-open probe")
		health   = flag.Duration("health-interval", 2*time.Second, "background replica health-probe interval (0 disables)")

		admitN    = flag.Int("admit-concurrent", 16, "concurrently executing scatter-gathers before new arrivals queue")
		admitQ    = flag.Int("admit-queue", 32, "admission queue depth behind the concurrency limit (-1 disables queueing)")
		admitWait = flag.Duration("admit-wait", 2*time.Second, "longest a request may queue for admission before a 429")

		traceCap    = flag.Int("trace-capacity", 256, "retained traces kept in memory for /debug/traces")
		traceSample = flag.Int("trace-sample", 16, "keep 1 in N healthy fast query traces (errors, degraded and tail-latency traces are always kept; < 0 disables sampling)")
	)
	flag.Var(&shards, "shard", "shard declaration name=url1,url2,... (repeatable; first replica is the primary)")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "coordinator: at least one -shard name=url1,url2 is required")
		os.Exit(2)
	}
	c, err := cluster.New(shards, cluster.Config{
		QueryTimeout:       *qTimeout,
		ShardTimeout:       *sTimeout,
		AttemptsPerReplica: *attempts,
		MaxConcurrent:      *admitN,
		QueueDepth:         *admitQ,
		QueueWait:          *admitWait,
		BaseBackoff:        *backoff,
		MaxBackoff:         *maxBack,
		HedgeAfter:         *hedge,
		HedgeQuantile:      *hedgeQ,
		Seed:               *seed,
		Breaker:            cluster.BreakerConfig{Threshold: *brkN, Cooloff: *brkCool},
		Logger:             logger,
		Traces:             obs.NewTraceStore(obs.TraceStoreConfig{Capacity: *traceCap, SampleEvery: *traceSample}),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if *health > 0 {
		stopHealth := c.StartHealthChecks(ctx, *health)
		defer stopHealth()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}
	logger.Info("svq-act cluster coordinator listening",
		"addr", ln.Addr().String(), "shards", len(shards))

	hs := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		// Writes must outlast the slowest scatter-gather: batches run
		// entries sequentially, so budget several query timeouts.
		WriteTimeout: 8**qTimeout + 10*time.Second,
		IdleTimeout:  60 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "coordinator:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		logger.Info("shutting down: draining in-flight scatters")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			logger.Error("drain incomplete", "error", err.Error())
			_ = hs.Close()
			os.Exit(1)
		}
		logger.Info("shutdown complete")
	}
}
