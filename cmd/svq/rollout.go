package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"svqact/internal/cluster"
)

// runRollout implements `svq rollout`: the operator's lever for a
// coordinator-driven rolling generation swap. It POSTs /rollout to start
// the walk, then polls GET /rollout printing per-shard progress until the
// rollout reaches "done" (exit 0) or "failed" (exit 1 — the halt leaves
// the old generation serving on every replica that did not complete).
// -status only reports the current state without starting anything.
func runRollout(args []string) int {
	fs := flag.NewFlagSet("svq rollout", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8090", "base URL of the coordinator")
	canary := fs.String("canary", "", "ranked statement used to verify each reloaded replica (empty skips the canary)")
	canaryK := fs.Int("canary-k", 1, "canary query LIMIT override")
	drainWait := fs.Duration("drain-wait", 500*time.Millisecond, "pause between draining a replica and reloading it")
	requireAdvance := fs.Bool("require-advance", false, "fail replicas whose reload does not increase the generation")
	wait := fs.Bool("wait", true, "poll until the rollout completes or fails")
	interval := fs.Duration("interval", 250*time.Millisecond, "poll interval while waiting")
	timeout := fs.Duration("timeout", 5*time.Minute, "give up waiting after this long")
	status := fs.Bool("status", false, "report the current rollout status without starting one")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: svq rollout [-server URL] [-canary SQL] [-status] [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	client := &http.Client{Timeout: 30 * time.Second}
	base := strings.TrimRight(*server, "/")

	if *status {
		st, err := rolloutGet(client, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "svq rollout:", err)
			return 1
		}
		printRollout(st)
		if st.State == "failed" {
			return 1
		}
		return 0
	}

	body, _ := json.Marshal(map[string]any{
		"canary_sql":      *canary,
		"canary_k":        *canaryK,
		"drain_wait_ms":   int(drainWait.Milliseconds()),
		"require_advance": *requireAdvance,
	})
	resp, err := client.Post(base+"/rollout", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "svq rollout:", err)
		return 1
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			fmt.Fprintln(os.Stderr, "svq rollout:", e.Error)
		} else {
			fmt.Fprintf(os.Stderr, "svq rollout: POST /rollout: status %d\n", resp.StatusCode)
		}
		return 1
	}
	fmt.Println("rollout started")
	if !*wait {
		return 0
	}

	deadline := time.Now().Add(*timeout)
	for {
		st, err := rolloutGet(client, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "svq rollout:", err)
			return 1
		}
		switch st.State {
		case "done":
			printRollout(st)
			return 0
		case "failed":
			printRollout(st)
			return 1
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "svq rollout: still %s after %s; poll `svq rollout -status`\n", st.State, *timeout)
			return 1
		}
		time.Sleep(*interval)
	}
}

func rolloutGet(client *http.Client, base string) (cluster.RolloutStatus, error) {
	var st cluster.RolloutStatus
	resp, err := client.Get(base + "/rollout")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET /rollout: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return st, fmt.Errorf("GET /rollout: %w", err)
	}
	return st, nil
}

func printRollout(st cluster.RolloutStatus) {
	fmt.Printf("rollout %s", st.State)
	if st.Error != "" {
		fmt.Printf(": %s", st.Error)
	}
	fmt.Println()
	for _, sh := range st.Shards {
		fmt.Printf("  shard %-8s %s\n", sh.Shard, sh.State)
		for _, r := range sh.Replicas {
			line := fmt.Sprintf("    %-12s %-10s", r.Replica, r.State)
			if r.FromGeneration > 0 || r.ToGeneration > 0 {
				line += fmt.Sprintf(" gen %d -> %d", r.FromGeneration, r.ToGeneration)
			}
			if r.Error != "" {
				line += "  " + r.Error
			}
			fmt.Println(line)
		}
	}
}
