// Command svq runs a query of the SQL-like dialect against one of the
// synthetic benchmark datasets, online (SVAQ/SVAQD) or offline (RVAQ),
// depending on the query.
//
// The PROCESS source names a stream: for -dataset youtube it is a query-set
// name (q1..q12, all videos of that set concatenated); for -dataset movies
// it is a movie title (e.g. titanic).
//
// Examples:
//
//	svq -query "SELECT MERGE(clipID) AS Sequence FROM (PROCESS q2 PRODUCE clipID,
//	     obj USING ObjectDetector, act USING ActionRecognizer)
//	     WHERE act='blowing_leaves' AND obj.include('car')"
//
//	svq -dataset movies -query "SELECT MERGE(clipID) AS s, RANK(act, obj)
//	     FROM (PROCESS titanic PRODUCE clipID, obj USING ObjectTracker, act USING ActionRecognizer)
//	     WHERE act='kissing' AND obj.include('surfboard','boat')
//	     ORDER BY RANK(act, obj) LIMIT 5"
//
// Prefixing a query with EXPLAIN additionally prints the predicate plan the
// execution ran with — the adaptive cheapest-rejection-first order, the
// declared order, and the per-predicate cost/selectivity statistics:
//
//	svq -query "EXPLAIN SELECT MERGE(clipID) AS Sequence FROM (PROCESS q2 ...) WHERE ..."
//
// The fsck subcommand verifies a saved repository offline — commit records,
// manifest checksums and invariants, table magic/checksums/sort order — and
// exits non-zero if any member is corrupt:
//
//	svq fsck ./repo
//
// The split subcommand partitions a repository by video into N shard
// repositories for sharded serving (cmd/serve -shard-name per shard,
// cmd/coordinator in front). Placement is deterministic by video name, so
// re-running split after re-ingest keeps every video on the same shard:
//
//	svq split -n 2 -out ./shards ./repo
//
// The trace subcommand explains retained queries from a running serve or
// coordinator process: with no argument it lists the retained trace index
// (GET /debug/traces), with a trace id it renders the full span tree as an
// ASCII waterfall (GET /debug/traces/{id}):
//
//	svq trace -server http://127.0.0.1:8090
//	svq trace -server http://127.0.0.1:8090 9a4ee1c2bb03d70f
//
// The rollout subcommand drives a coordinator's rolling generation swap
// (POST /rollout): shard replica sets are walked one replica at a time
// through drain → reload → verify, any failed step halts with the old
// generation still serving, and the command polls progress until the
// rollout completes or fails (exit 0 / 1):
//
//	svq rollout -server http://127.0.0.1:8090 -canary "SELECT ... LIMIT 1"
//	svq rollout -server http://127.0.0.1:8090 -status
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"svqact/internal/cluster"
	"svqact/internal/core"
	"svqact/internal/detect"
	"svqact/internal/plan"
	"svqact/internal/rank"
	"svqact/internal/sqlq"
	"svqact/internal/synth"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "fsck" {
		os.Exit(runFsck(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "split" {
		os.Exit(runSplit(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		os.Exit(runTrace(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "rollout" {
		os.Exit(runRollout(os.Args[2:]))
	}
	var (
		query   = flag.String("query", "", "SQL-like query (reads stdin when empty)")
		dataset = flag.String("dataset", "youtube", "dataset: youtube or movies")
		scale   = flag.Float64("scale", 0.25, "dataset scale relative to the paper")
		seed    = flag.Int64("seed", 42, "dataset and model seed")
		algo    = flag.String("algo", "svaqd", "online algorithm: svaq or svaqd")
		p0      = flag.Float64("p0", 1e-4, "initial background probability")
		repo    = flag.String("repo", "", "answer ranked queries from a saved repository (built with cmd/ingest) instead of re-ingesting")
		cascade = flag.Bool("cascade", false, "run the detectors as tiered cascades (recall-complete distilled cheap tier in front of each model)")
		budget  = flag.Duration("budget", 0, "per-query inference budget (simulated model time); 0 means unlimited. Online queries degrade gracefully past it")
	)
	flag.Parse()
	if err := run(*query, *dataset, *scale, *seed, *algo, *p0, *repo, *cascade, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "svq:", err)
		os.Exit(1)
	}
}

func run(query, dataset string, scale float64, seed int64, algo string, p0 float64, repoDir string, cascade bool, budget time.Duration) error {
	if query == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		query = string(data)
	}
	st, err := sqlq.Parse(query)
	if err != nil {
		return err
	}
	plan, err := st.Plan()
	if err != nil {
		return err
	}

	var obj detect.ObjectDetector = detect.NewObjectDetector(detect.MaskRCNN, seed)
	var act detect.ActionRecognizer = detect.NewActionRecognizer(detect.I3D, seed)
	if cascade {
		obj = detect.NewDistilledObjectCascade(obj, detect.DistilledRCNN, seed)
		act = detect.NewDistilledActionCascade(act, detect.DistilledI3D, seed)
	}
	models := detect.NewModels(obj, act)
	if !plan.Online && repoDir != "" {
		return runRepo(repoDir, plan.Query, plan.K, plan.Explain)
	}
	stream, err := resolveSource(dataset, plan.Source, scale, seed)
	if err != nil {
		return err
	}

	if !plan.Online {
		return runOffline(stream, plan.Query, models, plan.K, plan.Explain)
	}
	if plan.Extended {
		return runExtended(stream, plan.CNF, models, algo, p0, plan.Explain)
	}
	return runOnline(stream, plan.Query, models, algo, p0, budget, plan.Explain)
}

// source is the minimal stream interface the command needs.
type source interface {
	detect.TruthVideo
}

func resolveSource(dataset, name string, scale float64, seed int64) (source, error) {
	switch dataset {
	case "youtube":
		d := synth.YouTube(synth.Options{Scale: scale, Seed: seed})
		spec := d.Query(name)
		if spec == nil {
			return nil, fmt.Errorf("unknown youtube query set %q (use q1..q12)", name)
		}
		var vids []*synth.Video
		for _, v := range d.Videos {
			if !v.ActionPresence(spec.Action).Empty() {
				vids = append(vids, v)
			}
		}
		return synth.NewConcat(name, vids)
	case "movies":
		d := synth.Movies(synth.Options{Scale: scale, Seed: seed})
		v := d.Video(name)
		if v == nil {
			return nil, fmt.Errorf("unknown movie %q", name)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

// printExplain renders a predicate-ordering plan report as the EXPLAIN
// block. Ordering is a cost decision only; EXPLAIN output never implies a
// different result.
func printExplain(rep *plan.Report) { fprintExplain(os.Stdout, rep) }

// fprintExplain is printExplain against an arbitrary writer (testable). The
// tier columns and the budget line appear only on tiered plans; a
// single-tier plan renders byte-identically to the pre-cascade output.
func fprintExplain(w io.Writer, rep *plan.Report) {
	if rep == nil {
		fmt.Fprintln(w, "EXPLAIN: no predicate plan available for this execution path")
		return
	}
	mode := "adaptive (cheapest expected cost to reject first)"
	if !rep.Adaptive {
		mode = "pinned (declared order)"
	}
	fmt.Fprintf(w, "EXPLAIN predicate plan: %s\n", mode)
	fmt.Fprintf(w, "  order:    %s\n", strings.Join(rep.Order, " -> "))
	fmt.Fprintf(w, "  declared: %s\n", strings.Join(rep.Declared, " -> "))
	fmt.Fprintf(w, "  replans %d, observed clips %d, skipped evaluations %d, saved cost %.0f ms\n",
		rep.Replans, rep.ObservedClips, rep.SkippedEvaluations, rep.SavedCostMS)
	if b := rep.Budget; b != nil {
		status := "within budget"
		if b.Exhausted {
			status = "exhausted"
		}
		fmt.Fprintf(w, "  budget %.0f ms: spent %.0f ms, skipped %d clips (%s)\n",
			b.LimitMS, b.SpentMS, b.SkippedClips, status)
	}
	nodes := append([]plan.NodeReport(nil), rep.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Position < nodes[j].Position })
	if !rep.Tiered {
		fmt.Fprintf(w, "  %-4s %-24s %12s %12s %8s %14s %8s %8s\n",
			"pos", "predicate", "est cost", "obs cost", "reject", "cost/reject", "evals", "skips")
		for _, n := range nodes {
			fmt.Fprintf(w, "  %-4d %-24s %10.2fms %10.2fms %8.3f %12.2fms %8d %8d\n",
				n.Position, n.Name, n.EstimatedCostMS, n.ObservedCostMS,
				n.RejectRate, n.CostToRejectMS, n.ObservedEvaluations, n.SkippedEvaluations)
		}
		return
	}
	fmt.Fprintf(w, "  %-4s %-24s %12s %12s %8s %14s %8s %8s %-8s %8s\n",
		"pos", "predicate", "est cost", "obs cost", "reject", "cost/reject", "evals", "skips", "tier", "esc")
	for _, n := range nodes {
		tier, esc := "-", "-"
		if n.Tier != "" {
			tier = n.Tier
			esc = fmt.Sprintf("%.3f", n.EscalationRate)
		}
		fmt.Fprintf(w, "  %-4d %-24s %10.2fms %10.2fms %8.3f %12.2fms %8d %8d %-8s %8s\n",
			n.Position, n.Name, n.EstimatedCostMS, n.ObservedCostMS,
			n.RejectRate, n.CostToRejectMS, n.ObservedEvaluations, n.SkippedEvaluations, tier, esc)
		for _, t := range n.Tiers {
			fmt.Fprintf(w, "       tier %-18s unit %8.2fms units %8d escalated %8d rate %.3f spent %10.2fms\n",
				t.Name, t.UnitCostMS, t.Units, t.Escalated, t.EscalationRate, t.SpentMS)
		}
	}
}

func runOnline(stream source, q core.Query, models detect.Models, algo string, p0 float64, budget time.Duration, explain bool) error {
	cfg := core.DefaultConfig()
	cfg.P0Object, cfg.P0Action = p0, p0
	cfg.InferenceBudget = budget
	var eng *core.Engine
	var err error
	switch algo {
	case "svaq":
		eng, err = core.NewSVAQ(models, cfg)
	case "svaqd":
		eng, err = core.NewSVAQD(models, cfg)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return err
	}
	var meter detect.Meter
	eng.SetMeter(&meter)
	start := time.Now()
	res, err := eng.Run(context.Background(), stream, q)
	if err != nil {
		return err
	}
	g := stream.Geometry()
	fmt.Printf("%s over %s: query %s, %d clips\n", eng.Mode(), stream.ID(), q, res.NumClips)
	fmt.Printf("result sequences (%d):\n", res.Sequences.NumIntervals())
	for _, iv := range res.Sequences.Intervals() {
		fr := g.FrameRangeOfClips(iv)
		fmt.Printf("  clips %4d..%-4d  frames %6d..%-6d\n", iv.Start, iv.End, fr.Start, fr.End)
	}
	for _, ps := range res.Predicates {
		fmt.Printf("predicate %-16s background=%.2e k_crit=%d positive clips=%d\n",
			ps.Name, ps.Background, ps.Critical, ps.Clips.TotalLen())
	}
	fmt.Printf("engine time %v; inference: %d frames, %d shots (simulated %v)\n",
		time.Since(start).Round(time.Millisecond),
		meter.ObjectFrames(), meter.ActionShots(), meter.Cost(models).Round(time.Second))
	if explain {
		printExplain(res.Plan)
	}
	return nil
}

func runExtended(stream source, q core.CNF, models detect.Models, algo string, p0 float64, explain bool) error {
	cfg := core.DefaultConfig()
	cfg.P0Object, cfg.P0Action = p0, p0
	var eng *core.Engine
	var err error
	switch algo {
	case "svaq":
		eng, err = core.NewSVAQ(models, cfg)
	case "svaqd":
		eng, err = core.NewSVAQD(models, cfg)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := eng.RunCNF(context.Background(), stream, q)
	if err != nil {
		return err
	}
	g := stream.Geometry()
	fmt.Printf("%s (extended) over %s: query %s, %d clips\n", eng.Mode(), stream.ID(), q, res.NumClips)
	fmt.Printf("result sequences (%d):\n", res.Sequences.NumIntervals())
	for _, iv := range res.Sequences.Intervals() {
		fr := g.FrameRangeOfClips(iv)
		fmt.Printf("  clips %4d..%-4d  frames %6d..%-6d\n", iv.Start, iv.End, fr.Start, fr.End)
	}
	for _, ps := range res.Atoms {
		fmt.Printf("atom %-24s background=%.2e k_crit=%d positive clips=%d\n",
			ps.Name, ps.Background, ps.Critical, ps.Clips.TotalLen())
	}
	fmt.Printf("engine time %v\n", time.Since(start).Round(time.Millisecond))
	if explain {
		// The streaming CNF evaluator schedules clause-at-a-time and does
		// not (yet) run through the plan layer.
		printExplain(nil)
	}
	return nil
}

// runFsck verifies one or more repository (or single-index) directories and
// reports every violated invariant. Exit code 0 means every committed
// generation is intact.
func runFsck(args []string) int {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	quiet := fs.Bool("q", false, "only report problems")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: svq fsck [-q] dir...")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	dirs := fs.Args()
	if len(dirs) == 0 {
		fs.Usage()
		return 2
	}
	exit := 0
	for _, dir := range dirs {
		reports, err := fsckDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svq fsck: %v\n", err)
			exit = 1
		}
		for _, rep := range reports {
			if !*quiet {
				fmt.Printf("ok %-32s gen %d  %6d clips  %2d object types  %d action types\n",
					rep.Dir, rep.Generation, rep.NumClips, rep.Objects, rep.Actions)
			}
			for _, w := range rep.Warnings {
				fmt.Printf("warn %s: %s\n", rep.Dir, w)
			}
		}
	}
	return exit
}

// runSplit partitions a repository into N shard repositories under -out,
// named shard0..shardN-1, using the cluster's stable video-name hash.
func runSplit(args []string) int {
	fs := flag.NewFlagSet("split", flag.ExitOnError)
	n := fs.Int("n", 2, "number of shards")
	out := fs.String("out", "", "output directory (shard repositories are created as <out>/shardK)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: svq split -n N -out dir repoDir")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if *n < 1 || *out == "" || fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	src := fs.Arg(0)
	dirs := make([]string, *n)
	for i := range dirs {
		dirs[i] = filepath.Join(*out, fmt.Sprintf("shard%d", i))
	}
	if err := cluster.SplitRepository(src, dirs); err != nil {
		fmt.Fprintln(os.Stderr, "svq split:", err)
		return 1
	}
	for i, dir := range dirs {
		reports, err := rank.FsckRepository(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svq split: verifying shard %d: %v\n", i, err)
			return 1
		}
		fmt.Printf("shard%d %s: %d members\n", i, dir, len(reports))
	}
	return 0
}

// fsckDir verifies dir as a single saved index when it holds a commit record
// itself, and as a repository of members otherwise.
func fsckDir(dir string) ([]*rank.FsckReport, error) {
	for _, marker := range []string{"CURRENT", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, marker)); err == nil {
			rep, err := rank.Fsck(dir)
			if err != nil {
				return nil, err
			}
			return []*rank.FsckReport{rep}, nil
		}
	}
	return rank.FsckRepository(dir)
}

// runRepo answers a ranked query from an already-ingested repository.
func runRepo(dir string, q core.Query, k int, explain bool) error {
	repo, err := rank.OpenRepository(dir)
	if err != nil {
		return err
	}
	defer repo.Close()
	fmt.Printf("repository %s: %d videos\n", dir, len(repo.Videos()))
	start := time.Now()
	res, err := repo.TopK(context.Background(), q, k, rank.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("RVAQ top-%d for %s (%d candidate sequences):\n", k, q, res.Candidates)
	for i, sr := range res.Sequences {
		vid, local, err := repo.Resolve(sr.Seq.Start)
		if err != nil {
			return err
		}
		fmt.Printf("  #%-2d score %10.2f  %s clips %d..%d\n",
			i+1, sr.Score(), vid, local, local+sr.Seq.Len()-1)
	}
	fmt.Printf("query time %v; %d random accesses\n",
		time.Since(start).Round(time.Millisecond), res.Stats.Random)
	if explain {
		printExplain(res.Plan)
	}
	return nil
}

func runOffline(stream source, q core.Query, models detect.Models, k int, explain bool) error {
	fmt.Printf("ingesting %s ...\n", stream.ID())
	ix, err := rank.Ingest(context.Background(), stream, models, rank.PaperScoring(), rank.DefaultIngestConfig())
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := rank.RVAQ(context.Background(), ix, q, k, rank.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("RVAQ top-%d for %s over %s (%d candidate sequences):\n",
		k, q, stream.ID(), res.Candidates)
	g := stream.Geometry()
	for i, sr := range res.Sequences {
		fr := g.FrameRangeOfClips(sr.Seq)
		fmt.Printf("  #%-2d score %10.2f  clips %4d..%-4d  frames %6d..%-6d\n",
			i+1, sr.Score(), sr.Seq.Start, sr.Seq.End, fr.Start, fr.End)
	}
	fmt.Printf("query time %v; %d random accesses, %d sorted accesses, %d clips scored\n",
		time.Since(start).Round(time.Millisecond), res.Stats.Random, res.Stats.Sorted, res.ClipsScored)
	if explain {
		printExplain(res.Plan)
	}
	return nil
}
