package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"svqact/internal/obs"
)

// runTrace implements `svq trace`: the operator's window into the retained
// trace stores of a serve or coordinator process. Without an id it prints
// the /debug/traces index; with one it fetches the stored trace and renders
// the span tree as an ASCII waterfall.
func runTrace(args []string) int {
	fs := flag.NewFlagSet("svq trace", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "base URL of a serve or coordinator process")
	width := fs.Int("width", 32, "waterfall bar width in columns")
	timeout := fs.Duration("timeout", 10*time.Second, "HTTP timeout")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: svq trace [-server URL] [-width N] [trace-id]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 1 {
		fs.Usage()
		return 2
	}
	client := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*server, "/")
	if fs.NArg() == 0 {
		if err := traceIndex(client, base); err != nil {
			fmt.Fprintln(os.Stderr, "svq trace:", err)
			return 1
		}
		return 0
	}
	if err := traceShow(client, base, fs.Arg(0), *width); err != nil {
		fmt.Fprintln(os.Stderr, "svq trace:", err)
		return 1
	}
	return 0
}

func traceGet(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", url, e.Error)
		}
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.Unmarshal(raw, out)
}

// traceIndex prints the retained-trace index, newest first.
func traceIndex(client *http.Client, base string) error {
	var idx struct {
		Count  int                   `json:"count"`
		Traces []obs.TraceIndexEntry `json:"traces"`
	}
	if err := traceGet(client, base+"/debug/traces", &idx); err != nil {
		return err
	}
	if idx.Count == 0 {
		fmt.Println("no retained traces")
		return nil
	}
	fmt.Printf("%-18s %-10s %-12s %12s %6s  %s\n",
		"TRACE", "OUTCOME", "REASON", "DURATION", "SPANS", "SQL DIGEST")
	for _, e := range idx.Traces {
		fmt.Printf("%-18s %-10s %-12s %10.1fms %6d  %s\n",
			e.ID, e.Outcome, e.Reason, e.DurationMS, e.Spans, e.SQLDigest)
	}
	fmt.Printf("%d retained; `svq trace -server %s <id>` renders one\n", idx.Count, base)
	return nil
}

// traceShow fetches one stored trace and renders the waterfall.
func traceShow(client *http.Client, base, id string, width int) error {
	var st obs.StoredTrace
	if err := traceGet(client, base+"/debug/traces/"+id, &st); err != nil {
		return err
	}
	fmt.Printf("outcome %s  reason %s  stored %s\n",
		st.Outcome, st.Reason, st.StoredAt.Format(time.RFC3339))
	if st.SQL != "" {
		fmt.Printf("sql: %s\n", st.SQL)
	}
	obs.WriteWaterfall(os.Stdout, st.Trace, width)
	return nil
}
