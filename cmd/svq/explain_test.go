package main

import (
	"strings"
	"testing"
	"time"

	"svqact/internal/plan"
)

func legacyReport() *plan.Report {
	p := plan.New([]plan.Node{
		{Name: "obj:car", PriorCost: 1125 * time.Millisecond, PriorReject: 0.8},
		{Name: "act:jumping", PriorCost: 90 * time.Millisecond, PriorReject: 0.6},
	}, plan.Options{})
	for c := 0; c < 8; c++ {
		p.Observe(0, c%2 == 0, 1100*time.Millisecond)
		p.Observe(1, c%3 == 0, 95*time.Millisecond)
		p.EndClip()
	}
	return p.Report()
}

// TestExplainLegacyGolden pins the single-tier EXPLAIN rendering byte for
// byte: the cascade columns must not leak into plans without cascades.
func TestExplainLegacyGolden(t *testing.T) {
	var sb strings.Builder
	fprintExplain(&sb, legacyReport())
	want := `EXPLAIN predicate plan: adaptive (cheapest expected cost to reject first)
  order:    act:jumping -> obj:car
  declared: obj:car -> act:jumping
  replans 0, observed clips 8, skipped evaluations 0, saved cost 0 ms
  pos  predicate                    est cost     obs cost   reject    cost/reject    evals    skips
  0    act:jumping                   90.00ms      95.00ms    0.420       226.19ms        8        0
  1    obj:car                     1125.00ms    1100.00ms    0.560      1964.29ms        8        0
`
	if got := sb.String(); got != want {
		t.Errorf("legacy EXPLAIN drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
	for _, leak := range []string{"tier", "esc", "budget"} {
		if strings.Contains(sb.String(), leak) {
			t.Errorf("single-tier EXPLAIN leaks %q", leak)
		}
	}
}

// TestExplainTieredRendering: tiered plans add the tier/esc columns, the
// per-tier sub-rows, and the budget line when a budget was set.
func TestExplainTieredRendering(t *testing.T) {
	p := plan.New([]plan.Node{
		{Name: "obj:car", PriorCost: 1125 * time.Millisecond, Window: 25, Tiers: []plan.TierCost{
			{Name: "distilled-rcnn", UnitCost: 3 * time.Millisecond, PriorEscalate: 0.2},
			{Name: "maskrcnn", UnitCost: 45 * time.Millisecond},
		}},
		{Name: "act:jumping", PriorCost: 90 * time.Millisecond},
	}, plan.Options{})
	p.ObserveTiers(0, []int64{250, 50}, []int64{50, 0})
	rep := p.Report()
	rep.Budget = &plan.BudgetReport{LimitMS: 5000, SpentMS: 5100, SkippedClips: 12, Exhausted: true}

	var sb strings.Builder
	fprintExplain(&sb, rep)
	out := sb.String()
	for _, want := range []string{
		"budget 5000 ms: spent 5100 ms, skipped 12 clips (exhausted)",
		"tier", "esc",
		"cascade",
		"tier distilled-rcnn",
		"tier maskrcnn",
		"units      250 escalated       50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tiered EXPLAIN missing %q:\n%s", want, out)
		}
	}
	// The single-model node renders with placeholder tier columns.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "act:jumping") && !strings.Contains(line, "-") {
			t.Errorf("single-model node lacks tier placeholders: %q", line)
		}
	}

	var nb strings.Builder
	fprintExplain(&nb, nil)
	if !strings.Contains(nb.String(), "no predicate plan") {
		t.Errorf("nil report rendering drifted: %q", nb.String())
	}
}
