// Command ingest runs the offline ingestion phase (paper §4.2) over a
// benchmark dataset and persists the resulting repository — per-type clip
// score tables plus individual sequences — so that queries can later run
// against it without touching the detection models.
//
//	ingest -dataset movies -out ./repo
//	ingest -dataset youtube -set q1 -out ./repo
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"svqact/internal/detect"
	"svqact/internal/rank"
	"svqact/internal/synth"
)

func main() {
	var (
		dataset = flag.String("dataset", "movies", "dataset: youtube or movies")
		set     = flag.String("set", "", "youtube query set to ingest (q1..q12; empty = all)")
		out     = flag.String("out", "repo", "output repository directory")
		scale   = flag.Float64("scale", 0.25, "dataset scale relative to the paper")
		seed    = flag.Int64("seed", 42, "dataset and model seed")
	)
	flag.Parse()
	if err := run(*dataset, *set, *out, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "ingest:", err)
		os.Exit(1)
	}
}

func run(dataset, set, out string, scale float64, seed int64) error {
	models := detect.NewModels(
		detect.NewObjectDetector(detect.MaskRCNN, seed),
		detect.NewActionRecognizer(detect.I3D, seed),
	)
	cfg := rank.DefaultIngestConfig()

	// The checkpoint lets a killed run resume: units whose generation has
	// committed are skipped on restart. The fingerprint ties the checkpoint
	// to every parameter that shapes the output, so changing any of them
	// starts the run from scratch.
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	fingerprint := fmt.Sprintf("%s|%s|%g|%d", dataset, set, scale, seed)
	cp := rank.OpenCheckpoint(filepath.Join(out, ".ingest-checkpoint.json"), fingerprint)
	if cp.Resumed() {
		fmt.Printf("resuming interrupted ingest (%d units already committed)\n", cp.Count())
	}

	switch dataset {
	case "movies":
		d := synth.Movies(synth.Options{Scale: scale, Seed: seed})
		repo, err := rank.OpenRepository(out)
		if err != nil {
			return err
		}
		defer repo.Close()
		for _, v := range d.Videos {
			unit := "video:" + v.ID()
			if repo.Has(v.ID()) {
				if cp.Done(unit) || cp.Resumed() {
					// Committed generations are authoritative; a member
					// present but uncheckpointed means the run died
					// between commit and checkpoint update.
					if err := cp.MarkDone(unit); err != nil {
						return err
					}
					fmt.Printf("skipped  %-24s (already committed)\n", v.ID())
					continue
				}
				// Fresh run over an existing repository: re-ingest.
				if err := repo.Remove(v.ID()); err != nil {
					return err
				}
			}
			start := time.Now()
			ix, err := rank.Ingest(context.Background(), v, models, rank.PaperScoring(), cfg)
			if err != nil {
				return err
			}
			if err := repo.Add(ix); err != nil {
				return err
			}
			if err := cp.MarkDone(unit); err != nil {
				return err
			}
			fmt.Printf("ingested %-24s %6d clips  %2d object types  %d action types  (%v) -> %s\n",
				v.ID(), ix.NumClips, len(ix.Objects), len(ix.Actions),
				time.Since(start).Round(time.Millisecond), filepath.Join(out, v.ID()))
		}
		fmt.Printf("repository %s now holds %d videos\n", out, len(repo.Videos()))
		return cp.Finish()
	case "youtube":
		d := synth.YouTube(synth.Options{Scale: scale, Seed: seed})
		sets := []string{set}
		if set == "" {
			sets = nil
			for _, q := range synth.YouTubeQueries() {
				sets = append(sets, q.Name)
			}
		}
		for _, name := range sets {
			spec := d.Query(name)
			if spec == nil {
				return fmt.Errorf("unknown query set %q", name)
			}
			unit := "set:" + name
			dir := filepath.Join(out, "yt-"+name)
			if committed(dir) && (cp.Done(unit) || cp.Resumed()) {
				if err := cp.MarkDone(unit); err != nil {
					return err
				}
				fmt.Printf("skipped  %-10s (already committed)\n", name)
				continue
			}
			var vids []detect.TruthVideo
			for _, v := range d.Videos {
				if !v.ActionPresence(spec.Action).Empty() {
					vids = append(vids, v)
				}
			}
			start := time.Now()
			ix, err := rank.IngestAllParallel(context.Background(), "yt-"+name, vids, models, rank.PaperScoring(), cfg, 0)
			if err != nil {
				return err
			}
			if err := rank.Save(dir, ix); err != nil {
				return err
			}
			if err := cp.MarkDone(unit); err != nil {
				return err
			}
			fmt.Printf("ingested %-10s %3d videos  %6d clips  (%v) -> %s\n",
				name, len(vids), ix.NumClips, time.Since(start).Round(time.Millisecond), dir)
		}
		return cp.Finish()
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
}

// committed reports whether dir holds a committed generation.
func committed(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, "CURRENT"))
	return err == nil
}
